//! The click-event generator.
//!
//! Each user draws a log-normal activity level, then that many click
//! events; each event picks a query by Zipf popularity and a url by a
//! sharper within-query Zipf (click-throughs concentrate on the top
//! result). Events on the same `(user, query, url)` accumulate into the
//! triplet count `c_ijk`, exactly like aggregating raw AOL click rows.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use dpsan_searchlog::{SearchLog, SearchLogBuilder};

use crate::config::AolLikeConfig;
use crate::zipf::Zipf;

/// Generate a synthetic search log (deterministic given the config).
pub fn generate(cfg: &AolLikeConfig) -> SearchLog {
    let mut builder = SearchLogBuilder::new();
    for_each_event(cfg, |user_id, query, url| {
        builder.add(user_id, query, url, 1).expect("unit counts are valid");
    });
    builder.build()
}

/// Drive the click-event stream of a configuration through a visitor,
/// one `(user, query, url)` click at a time, in generation order.
///
/// This is the single source of the event sequence: [`generate`]
/// aggregates it in memory, the streaming file writer in
/// [`crate::stream_writer`] spools it to disk — both see the exact
/// same deterministic stream for a given config.
pub fn for_each_event<F: FnMut(&str, &str, &str)>(cfg: &AolLikeConfig, mut visit: F) {
    cfg.validate();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let query_dist = Zipf::new(cfg.n_queries, cfg.query_zipf);
    let url_dist = Zipf::new(cfg.urls_per_query, cfg.url_zipf);

    for user in 0..cfg.n_users {
        let user_id = format!("{:06}", user);
        let events = sample_activity(&mut rng, cfg.mean_events_per_user, cfg.activity_sigma);
        let mut last: Option<(usize, usize)> = None;
        for _ in 0..events {
            // Bursty navigation: with probability `revisit_p`, re-click
            // the most recent *personal* (tail) pair. Fresh draws are
            // Zipf; head queries never burst, so popular head pairs
            // collect many light, one-or-two-click holders while a
            // user's repeat volume lands in their own tail pairs —
            // exactly the AOL regime: small `ln t` on head pairs (room
            // for the privacy LP) and unique heavy pairs that
            // preprocessing removes.
            let head_cutoff = (cfg.n_queries / 100).max(8);
            let (q, u) = match last {
                Some(pair) if rng.random::<f64>() < cfg.revisit_p => pair,
                _ => {
                    let q = query_dist.sample(&mut rng);
                    let u = url_dist.sample(&mut rng);
                    (q, u)
                }
            };
            last = if q >= head_cutoff { Some((q, u)) } else { None };
            // string forms keep the io layer honest without a lookup table
            let query = format!("query_{q}");
            let url = format!("www.site{q}-{u}.com");
            visit(&user_id, &query, &url);
        }
    }
}

/// Log-normal activity with the requested mean: `round(mean · exp(σz −
/// σ²/2))`, clamped to at least 1 event.
fn sample_activity<R: Rng>(rng: &mut R, mean: f64, sigma: f64) -> u64 {
    if sigma == 0.0 {
        return mean.round().max(1.0) as u64;
    }
    let z = standard_normal(rng);
    let v = mean * (sigma * z - sigma * sigma / 2.0).exp();
    v.round().max(1.0) as u64
}

/// One standard normal draw (Box–Muller; we need no state carry-over).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsan_searchlog::{preprocess, LogStats};
    use rand::rngs::StdRng;

    fn small_cfg() -> AolLikeConfig {
        AolLikeConfig {
            n_users: 120,
            n_queries: 800,
            mean_events_per_user: 30.0,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&small_cfg());
        let b = generate(&small_cfg());
        assert_eq!(a.size(), b.size());
        assert_eq!(a.n_pairs(), b.n_pairs());
        let c = generate(&AolLikeConfig { seed: 999, ..small_cfg() });
        assert_ne!(a.size(), c.size(), "different seeds differ");
    }

    #[test]
    fn volume_tracks_configured_activity() {
        let log = generate(&small_cfg());
        let per_user = log.size() as f64 / 120.0;
        assert!(
            per_user > 15.0 && per_user < 60.0,
            "mean events per user {per_user} should be near 30"
        );
    }

    #[test]
    fn zipf_head_is_shared_tail_is_unique() {
        let log = generate(&small_cfg());
        let (pre, report) = preprocess(&log);
        // the defining sparsity property: most *pairs* are unique and
        // get removed, but the surviving head carries real volume
        assert!(report.removed_pairs > pre.n_pairs(), "tail dominates pair count");
        assert!(pre.size() > 0, "head survives preprocessing");
        let stats = LogStats::of(&pre);
        assert!(stats.user_logs > 60, "most users share at least one head pair");
    }

    #[test]
    fn activity_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(5);
        let draws: Vec<u64> = (0..20_000).map(|_| sample_activity(&mut rng, 40.0, 1.0)).collect();
        let mean = draws.iter().sum::<u64>() as f64 / draws.len() as f64;
        assert!((mean - 40.0).abs() < 3.0, "mean {mean}");
        let max = *draws.iter().max().unwrap();
        assert!(max > 200, "heavy tail produces bursts (max {max})");
        let min = *draws.iter().min().unwrap();
        assert!(min >= 1, "everyone clicks at least once");
    }

    #[test]
    fn sigma_zero_gives_constant_activity() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            assert_eq!(sample_activity(&mut rng, 25.0, 0.0), 25);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn url_concentration_yields_one_dominant_url() {
        // with a sharp url Zipf the top url of a head query should carry
        // most of that query's clicks
        let log = generate(&AolLikeConfig { url_zipf: 2.5, ..small_cfg() });
        let q0 = log.queries().get("query_0").expect("head query exists");
        let mut counts: Vec<u64> = Vec::new();
        for pe in log.pairs() {
            let (q, _) = log.pair_key(pe.pair);
            if q.0 == q0 {
                counts.push(pe.total);
            }
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        assert!(!counts.is_empty());
        let total: u64 = counts.iter().sum();
        assert!(counts[0] as f64 / total as f64 > 0.5, "top url holds most clicks: {counts:?}");
    }
}
