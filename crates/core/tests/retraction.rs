//! Retraction steps through the warm solve session: when a sliding
//! window drops old rows, per-pair counts *decrease* between
//! consecutive O-UMP solves — variable caps shrink below the previous
//! optimum and every touched `ln t_ijk` coefficient drifts. The
//! declared-rhs-step route then restores a basis that is primal
//! infeasible (basic values above their new caps) and possibly dual
//! damaged, exactly the workload `reoptimize()` exists to repair.
//!
//! The growth direction (appended counts) is exercised by the serve
//! suite; these tests pin the *decrease* direction: every session
//! solve after a retraction must agree exactly — same λ, same floored
//! counts — with a cold solve of the same constraint system, and the
//! retraction steps must actually ride the dual path rather than
//! silently cold-starting every time.

use dpsan_core::session::SolveSession;
use dpsan_core::ump::output_size::{solve_oump_with, OumpOptions};
use dpsan_core::PrivacyConstraints;
use dpsan_dp::params::PrivacyParams;
use dpsan_lp::simplex::SimplexOptions;
use dpsan_searchlog::{preprocess, SearchLog, SearchLogBuilder};
use proptest::prelude::*;

const USERS: [&str; 3] = ["u1", "u2", "u3"];
const PAIRS: [(&str, &str); 3] =
    [("google", "google.com"), ("book", "amazon.com"), ("news", "bbc.com")];

/// Build a preprocessed log from a `users × pairs` count matrix
/// (zeros are skipped — that user simply holds nothing of the pair).
fn window(counts: &[[u64; 3]; 3]) -> SearchLog {
    let mut b = SearchLogBuilder::new();
    for (u, row) in USERS.iter().zip(counts) {
        for ((q, url), &c) in PAIRS.iter().zip(row) {
            if c > 0 {
                b.add(u, q, url, c).unwrap();
            }
        }
    }
    let (log, _) = preprocess(&b.build());
    log
}

fn params() -> PrivacyParams {
    PrivacyParams::from_e_epsilon(2.0, 0.5)
}

/// Session solve vs cold solve of the same constraints: λ and the
/// floored counts must agree exactly (the serve layer's byte-identity
/// guarantee rests on this).
fn assert_matches_cold(
    session: &mut SolveSession,
    log: &SearchLog,
    opts: &OumpOptions,
    step: usize,
) {
    let constraints = PrivacyConstraints::build(log, params()).unwrap();
    let warm = session.solve_oump(&constraints, opts).unwrap();
    let cold = solve_oump_with(&constraints, opts).unwrap();
    assert_eq!(warm.lambda, cold.lambda, "step {step}: λ diverged from cold solve");
    assert_eq!(warm.counts, cold.counts, "step {step}: counts diverged from cold solve");
    assert!(
        (warm.lp_value - cold.lp_value).abs() <= 1e-7,
        "step {step}: LP optimum diverged: warm {} vs cold {}",
        warm.lp_value,
        cold.lp_value,
    );
}

#[test]
fn sliding_window_retraction_matches_cold_solves() {
    // grow, grow, retract hard, retract again: the two retractions
    // shrink every cap below the previous optimum's basic values
    let steps: [[[u64; 3]; 3]; 4] = [
        [[15, 3, 0], [7, 0, 5], [17, 1, 4]],
        [[20, 5, 2], [9, 1, 6], [18, 2, 7]],
        [[8, 2, 1], [4, 1, 3], [6, 1, 2]],
        [[3, 1, 0], [2, 1, 1], [2, 1, 1]],
    ];
    let opts = OumpOptions::default();
    let mut session = SolveSession::new(SimplexOptions::default());
    for (step, counts) in steps.iter().enumerate() {
        assert_matches_cold(&mut session, &window(counts), &opts, step);
    }
    let st = session.stats();
    assert_eq!(st.solves, 4);
    assert!(
        st.dual_reopts + st.dual_fallbacks >= 3,
        "every post-first step must at least attempt the dual path: {st:?}"
    );
}

#[test]
fn retraction_to_minimum_support_still_solves() {
    // shrink all the way down to the smallest preprocessable window
    // (every pair at two holders with one unit each): caps collapse
    // from double digits to 2, the previous vertex is far outside
    let opts = OumpOptions::default();
    let mut session = SolveSession::new(SimplexOptions::default());
    let fat: [[u64; 3]; 3] = [[30, 10, 9], [25, 8, 7], [28, 9, 8]];
    let thin: [[u64; 3]; 3] = [[1, 1, 1], [1, 1, 1], [0, 0, 0]];
    assert_matches_cold(&mut session, &window(&fat), &opts, 0);
    assert_matches_cold(&mut session, &window(&thin), &opts, 1);
}

#[test]
fn alternating_growth_and_retraction_keeps_the_session_sound() {
    // a sawtooth window: the session must stay correct when primal
    // infeasibility (retraction) and dual drift (growth) alternate
    let opts = OumpOptions::default();
    let mut session = SolveSession::new(SimplexOptions::default());
    let lo: [[u64; 3]; 3] = [[4, 2, 1], [3, 1, 2], [5, 2, 2]];
    let hi: [[u64; 3]; 3] = [[19, 6, 4], [12, 5, 7], [21, 8, 6]];
    for step in 0..6 {
        let counts = if step % 2 == 0 { &hi } else { &lo };
        assert_matches_cold(&mut session, &window(counts), &opts, step);
    }
    assert_eq!(session.stats().solves, 6);
}

#[test]
fn retraction_that_drops_a_pair_degrades_to_cold_not_garbage() {
    // the window slides past every "news" row: the pair disappears in
    // preprocessing, the LP loses a column, and the declared rhs-step
    // premise is plainly false — the session must detect the shape
    // change and still return the cold answer
    let opts = OumpOptions::default();
    let mut session = SolveSession::new(SimplexOptions::default());
    let with_pair: [[u64; 3]; 3] = [[15, 3, 6], [7, 2, 5], [17, 1, 4]];
    let without_pair: [[u64; 3]; 3] = [[8, 2, 0], [4, 1, 0], [6, 1, 0]];
    assert_matches_cold(&mut session, &window(&with_pair), &opts, 0);
    assert_matches_cold(&mut session, &window(&without_pair), &opts, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random walks over the count matrix — growth, retraction, and
    /// mixtures — always agree with a cold solve.
    #[test]
    fn random_count_walks_match_cold_solves(
        mats in prop::collection::vec(
            prop::collection::vec(0u64..24, 9),
            2..6,
        ),
    ) {
        let opts = OumpOptions::default();
        let mut session = SolveSession::new(SimplexOptions::default());
        for (step, flat) in mats.iter().enumerate() {
            let mut counts = [[0u64; 3]; 3];
            for (i, &v) in flat.iter().enumerate() {
                counts[i / 3][i % 3] = v;
            }
            let log = window(&counts);
            if log.n_pairs() == 0 {
                continue;
            }
            let constraints = PrivacyConstraints::build(&log, params()).unwrap();
            let warm = session.solve_oump(&constraints, &opts).unwrap();
            let cold = solve_oump_with(&constraints, &opts).unwrap();
            prop_assert_eq!(warm.lambda, cold.lambda, "step {}: λ diverged", step);
            prop_assert_eq!(&warm.counts, &cold.counts, "step {}: counts diverged", step);
        }
    }
}
