//! F-UMP: the Frequent query–url pair Utility-Maximizing Problem
//! (Section 5.2).
//!
//! With a fixed output size `|O| ∈ (0, λ]` and minimum support `s`:
//!
//! ```text
//! min  Σ_{f frequent} y_f
//! s.t. privacy rows           Σ_{A_k} x_ij ln t_ijk ≤ B
//!      fixed output size      Σ_ij x_ij = |O|
//!      abs-value split        y_f ≥  x_f/|O| − c_f/|D|
//!                             y_f ≥ −x_f/|O| + c_f/|D|
//!      x ≥ 0 integer
//! ```
//!
//! Solved by linear relaxation + floor (Lemma 2). Note the floored
//! counts may sum to slightly less than `|O|` — the equality is a
//! utility device, not a privacy constraint, so feasibility is kept.

use dpsan_dp::params::PrivacyParams;
use dpsan_lp::problem::{Problem, RowBounds, Sense, VarBounds};
use dpsan_lp::simplex::{solve, SimplexOptions, SolveStatus};
use dpsan_searchlog::{frequent_pairs, FrequentPair, SearchLog};

use crate::constraints::PrivacyConstraints;
use crate::error::CoreError;
use crate::session::SolveSession;
use crate::ump::{floor_counts, verify_counts};

/// F-UMP options.
#[derive(Debug, Clone)]
pub struct FumpOptions {
    /// Minimum support `s` defining the frequent pairs.
    pub min_support: f64,
    /// Target output size `|O|` (must be in `(0, λ]` for feasibility).
    pub output_size: u64,
    /// LP solver options.
    pub lp: SimplexOptions,
    /// Cap counts at `x_ij ≤ c_ij` (see
    /// [`crate::ump::output_size::OumpOptions::cap_at_input`]).
    pub cap_at_input: bool,
    /// Externally supplied frequent-pair set (pair ids must refer to
    /// the log being solved). `None` mines exactly via
    /// [`frequent_pairs`] — the default. Streaming callers pass the
    /// set mined by the `dpsan-stream` heavy-hitters sketch (already
    /// exactified against the preprocessed log), so the solve never
    /// re-scans the full pair histogram.
    pub frequent: Option<Vec<FrequentPair>>,
}

impl FumpOptions {
    /// Options with the given support and output size, defaults
    /// elsewhere.
    pub fn new(min_support: f64, output_size: u64) -> Self {
        FumpOptions {
            min_support,
            output_size,
            lp: SimplexOptions::default(),
            cap_at_input: true,
            frequent: None,
        }
    }

    /// Use an externally supplied frequent-pair set instead of mining.
    pub fn with_frequent(mut self, frequent: Vec<FrequentPair>) -> Self {
        self.frequent = Some(frequent);
        self
    }
}

/// F-UMP solution.
#[derive(Debug, Clone)]
pub struct FumpSolution {
    /// Floored optimal counts `⌊x*_ij⌋`, one per pair.
    pub counts: Vec<u64>,
    /// The LP-optimal counts before flooring (for utility measurement;
    /// sampling always uses the floored `counts`).
    pub lp_counts: Vec<f64>,
    /// The LP optimum: the minimum sum of support distances over the
    /// frequent pairs (at the *relaxed* solution).
    pub lp_objective: f64,
    /// The frequent pairs the objective protected.
    pub frequent: Vec<FrequentPair>,
    /// Simplex iterations used.
    pub iterations: usize,
}

/// Solve the F-UMP on a preprocessed log.
pub fn solve_fump(
    log: &SearchLog,
    params: PrivacyParams,
    opts: &FumpOptions,
) -> Result<FumpSolution, CoreError> {
    let constraints = PrivacyConstraints::build(log, params)?;
    solve_fump_with(log, &constraints, opts)
}

/// Solve the F-UMP given prebuilt constraints.
pub fn solve_fump_with(
    log: &SearchLog,
    constraints: &PrivacyConstraints,
    opts: &FumpOptions,
) -> Result<FumpSolution, CoreError> {
    solve_fump_inner(log, constraints, opts, None)
}

impl SolveSession {
    /// Solve the F-UMP through this session, warm-starting from the
    /// previous optimal basis. Consecutive cells that share the
    /// frequent-pair set keep the same LP shape, so the snapshot
    /// carries over; a support change silently degrades that one solve
    /// to a cold start. Unlike the O-UMP, an F-UMP grid step is only
    /// *sometimes* rhs-only (budget moves keep the matrix fixed, `|O|`
    /// moves rewrite the abs-value-split coefficients), so the
    /// session's fingerprint-based auto-detection decides per step
    /// whether the dual fast path applies. The session's LP options
    /// override `opts.lp`.
    pub fn solve_fump(
        &mut self,
        log: &SearchLog,
        constraints: &PrivacyConstraints,
        opts: &FumpOptions,
    ) -> Result<FumpSolution, CoreError> {
        solve_fump_inner(log, constraints, opts, Some(self))
    }
}

/// Build the F-UMP linear program of Section 5.2 (privacy rows, fixed
/// output size, abs-value split on the frequent pairs).
fn build_problem(
    log: &SearchLog,
    constraints: &PrivacyConstraints,
    opts: &FumpOptions,
    frequent: &[FrequentPair],
) -> Problem {
    let n = constraints.n_pairs();
    let size_d = log.size() as f64;
    let size_o = opts.output_size as f64;

    let mut p = Problem::new(Sense::Minimize);
    let x_cols: Vec<usize> = (0..n)
        .map(|pi| {
            let upper = if opts.cap_at_input {
                constraints.pair_totals()[pi] as f64
            } else {
                f64::INFINITY
            };
            p.add_col(0.0, VarBounds { lower: 0.0, upper }).expect("valid column")
        })
        .collect();
    constraints.add_to_problem(&mut p, &x_cols);

    // Σ x = |O|
    let all: Vec<(usize, f64)> = x_cols.iter().map(|&j| (j, 1.0)).collect();
    p.add_row(RowBounds::equal(size_o), &all).expect("valid row");

    // abs-value split per frequent pair
    for f in frequent {
        let y = p.add_col(1.0, VarBounds::non_negative()).expect("valid column");
        let xj = x_cols[f.pair.index()];
        let target = f.count as f64 / size_d;
        // y + x/|O| >= target  and  y - x/|O| >= -target
        p.add_row(RowBounds::at_least(target), &[(y, 1.0), (xj, 1.0 / size_o)]).expect("valid row");
        p.add_row(RowBounds::at_least(-target), &[(y, 1.0), (xj, -1.0 / size_o)])
            .expect("valid row");
    }
    p
}

fn solve_fump_inner(
    log: &SearchLog,
    constraints: &PrivacyConstraints,
    opts: &FumpOptions,
    session: Option<&mut SolveSession>,
) -> Result<FumpSolution, CoreError> {
    assert!(opts.min_support > 0.0 && opts.min_support <= 1.0, "support must be in (0, 1]");
    if opts.output_size == 0 {
        return Err(CoreError::OutputSizeInfeasible { requested: 0 });
    }
    if constraints.n_pairs() == 0 {
        return Err(CoreError::OutputSizeInfeasible { requested: opts.output_size });
    }

    let n = constraints.n_pairs();
    let frequent = match &opts.frequent {
        Some(f) => {
            assert!(
                f.iter().all(|fp| fp.pair.index() < n),
                "supplied frequent pairs must refer to the solved log"
            );
            f.clone()
        }
        None => frequent_pairs(log, opts.min_support),
    };
    let p = build_problem(log, constraints, opts, &frequent);

    let sol = match session {
        Some(s) => s.solve(&p)?,
        None => solve(&p, &opts.lp)?,
    };
    match sol.status {
        SolveStatus::Optimal => {}
        SolveStatus::Infeasible => {
            return Err(CoreError::OutputSizeInfeasible { requested: opts.output_size })
        }
        _ => return Err(CoreError::UnexpectedStatus("F-UMP did not reach optimality")),
    }

    let counts = floor_counts(&sol.x[..n]);
    verify_counts(constraints, &counts)?;
    Ok(FumpSolution {
        counts,
        lp_counts: sol.x[..n].to_vec(),
        lp_objective: sol.objective,
        frequent,
        iterations: sol.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ump::output_size::{solve_oump, OumpOptions};
    use dpsan_searchlog::{preprocess, SearchLogBuilder};

    /// A log with a clear frequency skew over four shared pairs. Each
    /// pair is spread across many holders with small shares, the regime
    /// of real search logs (small `ln t_ijk`, so integer counts survive
    /// the LP-relaxation floor).
    fn skewed_log() -> SearchLog {
        let mut b = SearchLogBuilder::new();
        // google: 10 holders x 12 clicks -> support 120/216
        for k in 0..10 {
            b.add(&format!("u{k}"), "google", "google.com", 12).unwrap();
        }
        // weather: 8 holders x 6 clicks -> 48/216
        for k in 0..8 {
            b.add(&format!("u{k}"), "weather", "weather.com", 6).unwrap();
        }
        // book: 6 holders x 5 clicks -> 30/216
        for k in 2..8 {
            b.add(&format!("u{k}"), "book", "amazon.com", 5).unwrap();
        }
        // rare: 6 holders x 3 clicks -> 18/216
        for k in 4..10 {
            b.add(&format!("u{k}"), "rare", "rare.org", 3).unwrap();
        }
        let (log, _) = preprocess(&b.build());
        log
    }

    fn params() -> PrivacyParams {
        PrivacyParams::from_e_epsilon(2.0, 0.5)
    }

    fn opts(s: f64, o: u64) -> FumpOptions {
        FumpOptions::new(s, o)
    }

    #[test]
    fn solution_is_private_and_sized() {
        let log = skewed_log();
        let lambda = solve_oump(&log, params(), &OumpOptions::default()).unwrap().lambda;
        assert!(lambda > 4, "need room for a meaningful output size (λ={lambda})");
        let o = lambda / 2;
        let s = solve_fump(&log, params(), &opts(0.05, o)).unwrap();
        let c = PrivacyConstraints::build(&log, params()).unwrap();
        assert!(c.satisfied_by(&s.counts, 1e-9));
        let total: u64 = s.counts.iter().sum();
        assert!(total <= o, "floored total cannot exceed |O|");
        assert!(total + s.counts.len() as u64 >= o, "flooring loses < 1 per pair");
    }

    #[test]
    fn frequent_supports_tracked_when_budget_allows() {
        let log = skewed_log();
        let lambda = solve_oump(&log, params(), &OumpOptions::default()).unwrap().lambda;
        let o = lambda.min(log.size() / 3).max(1);
        let s = solve_fump(&log, params(), &opts(0.2, o)).unwrap();
        assert!(!s.frequent.is_empty(), "google pair is frequent at s=0.2 (support 120/216)");
        // objective is a sum of distances: non-negative and bounded by
        // the number of frequent pairs
        assert!(s.lp_objective >= -1e-9);
        assert!(s.lp_objective <= s.frequent.len() as f64 + 1e-9);
    }

    #[test]
    fn objective_decreases_with_looser_privacy() {
        let log = skewed_log();
        let tight = PrivacyParams::from_e_epsilon(1.4, 0.2);
        let loose = PrivacyParams::from_e_epsilon(2.3, 0.8);
        // pick an output size feasible under both budgets (λ is monotone)
        let o = solve_oump(&log, tight, &OumpOptions::default()).unwrap().lambda;
        assert!(o > 0, "tight budget still admits a positive output size");
        let d_tight = solve_fump(&log, tight, &opts(0.1, o)).unwrap().lp_objective;
        let d_loose = solve_fump(&log, loose, &opts(0.1, o)).unwrap().lp_objective;
        assert!(
            d_loose <= d_tight + 1e-9,
            "looser privacy cannot hurt the optimum: {d_loose} vs {d_tight}"
        );
    }

    #[test]
    fn output_size_beyond_lambda_is_infeasible() {
        let log = skewed_log();
        let lambda = solve_oump(&log, params(), &OumpOptions::default()).unwrap().lambda;
        let err = solve_fump(&log, params(), &opts(0.1, lambda * 10 + 100)).unwrap_err();
        assert!(matches!(err, CoreError::OutputSizeInfeasible { .. }));
    }

    #[test]
    fn zero_output_size_rejected() {
        let log = skewed_log();
        assert!(matches!(
            solve_fump(&log, params(), &opts(0.1, 0)),
            Err(CoreError::OutputSizeInfeasible { requested: 0 })
        ));
    }

    #[test]
    fn no_frequent_pairs_reduces_to_feasibility() {
        let log = skewed_log();
        // support threshold of 1.0: nothing is frequent; objective 0
        let lambda = solve_oump(&log, params(), &OumpOptions::default()).unwrap().lambda;
        let s = solve_fump(&log, params(), &opts(1.0, lambda.max(1) / 2)).unwrap();
        assert!(s.frequent.is_empty());
        assert!(s.lp_objective.abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "support must be in (0, 1]")]
    fn bad_support_panics() {
        let log = skewed_log();
        let _ = solve_fump(&log, params(), &opts(0.0, 10));
    }

    #[test]
    fn supplied_frequent_set_matches_mined_solve() {
        let log = skewed_log();
        let lambda = solve_oump(&log, params(), &OumpOptions::default()).unwrap().lambda;
        let o = (lambda / 2).max(1);
        let mined = solve_fump(&log, params(), &opts(0.1, o)).unwrap();
        // hand the mined set back explicitly: identical LP, identical optimum
        let given = dpsan_searchlog::frequent_pairs(&log, 0.1);
        let s = solve_fump(&log, params(), &opts(0.1, o).with_frequent(given.clone())).unwrap();
        assert_eq!(s.counts, mined.counts);
        assert_eq!(s.frequent, given);
        assert!((s.lp_objective - mined.lp_objective).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "refer to the solved log")]
    fn out_of_range_supplied_pair_rejected() {
        let log = skewed_log();
        let bad = vec![FrequentPair {
            pair: dpsan_searchlog::PairId::from_index(log.n_pairs() + 7),
            count: 1,
            support: 0.5,
        }];
        let _ = solve_fump(&log, params(), &opts(0.1, 1).with_frequent(bad));
    }
}
