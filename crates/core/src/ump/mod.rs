//! The three utility-maximizing problems of Section 5.
//!
//! * [`output_size`] — O-UMP: maximize `Σ x_ij` (the optimum is the
//!   maximum achievable output size λ),
//! * [`frequent`] — F-UMP: minimize the sum of support distances of the
//!   frequent pairs at a fixed output size `|O| ∈ (0, λ]`,
//! * [`diversity`] — D-UMP: maximize the number of distinct pairs kept
//!   (a packing BIP; NP-hard, solved by the SPE heuristic of
//!   Algorithm 2 and several comparison solvers).
//!
//! All three solve over the same privacy polytope
//! ([`crate::constraints::PrivacyConstraints`]); the paper's Lemmas 1–3
//! rely only on `⌊x*⌋ ≤ x*` keeping the floored counts feasible, which
//! [`floor_counts`] implements and every solver re-verifies.

pub mod diversity;
pub mod frequent;
pub mod output_size;

use crate::constraints::PrivacyConstraints;
use crate::error::CoreError;

/// Floor an LP point to integer counts (`⌊x*⌋`), guarding against the
/// solver's representation noise just below integers.
pub fn floor_counts(x: &[f64]) -> Vec<u64> {
    x.iter().map(|&v| if v <= 0.0 { 0 } else { (v + 1e-7).floor() as u64 }).collect()
}

/// Verify floored counts against the constraints, converting numerical
/// surprises into a hard error instead of a privacy leak.
pub fn verify_counts(constraints: &PrivacyConstraints, counts: &[u64]) -> Result<(), CoreError> {
    let x: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    if constraints.n_pairs() == 0 {
        return Ok(());
    }
    let violation = constraints.max_violation(&x);
    if violation > 1e-6 {
        return Err(CoreError::ConstraintViolation { violation });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_handles_noise_and_negatives() {
        let x = [2.9999999999, -0.3, 0.0, 5.2, 0.999999999];
        assert_eq!(floor_counts(&x), vec![3, 0, 0, 5, 1]);
    }

    #[test]
    fn floor_of_exact_integers_is_identity() {
        assert_eq!(floor_counts(&[0.0, 1.0, 7.0]), vec![0, 1, 7]);
    }
}
