//! D-UMP: the Diversity Utility-Maximizing Problem (Section 5.3).
//!
//! After Theorem 2's reduction, the D-UMP is the packing BIP
//!
//! ```text
//! max  Σ_ij y_ij
//! s.t. ∀A_k:  Σ_{(i,j)∈A_k} y_ij ln t_ijk ≤ B,   y ∈ {0,1}
//! ```
//!
//! which is NP-hard. The paper's answer is the **Sensitive query–url
//! Pair Eliminating (SPE)** heuristic (Algorithm 2): start from all
//! pairs selected and repeatedly drop the pair with the largest
//! `t_ijk` until every constraint holds. This module implements SPE in
//! its paper-literal form, a variant restricted to violated rows (an
//! ablation), and the comparison solvers standing in for Matlab
//! `bintprog` / NEOS `qsopt_ex` / `scip` / `feaspump` of Table 7:
//! LP-rounding, a feasibility-pump-style heuristic, and exact (or
//! limit-bounded) branch & bound.

use std::collections::BinaryHeap;

use dpsan_dp::params::PrivacyParams;
use dpsan_lp::mip::{
    lp_round_packing, lp_round_packing_from, pump_packing, solve_mip, BbOptions, MipStatus,
    PumpOptions,
};
use dpsan_lp::problem::{Problem, Sense, VarBounds};
use dpsan_lp::simplex::{SimplexOptions, SolveStatus};
use dpsan_searchlog::SearchLog;

use crate::constraints::PrivacyConstraints;
use crate::error::CoreError;
use crate::session::SolveSession;
use crate::ump::verify_counts;

/// Which solver attacks the BIP.
#[derive(Debug, Clone, PartialEq)]
pub enum DumpSolver {
    /// Algorithm 2 exactly as printed: repeatedly remove the *globally*
    /// largest `t_ijk` among selected pairs.
    Spe,
    /// SPE restricted to entries of currently *violated* rows (never
    /// wastes a removal on an already-satisfied constraint).
    SpeViolated,
    /// LP relaxation + round-down + greedy raise
    /// (the `qsopt_ex`-style comparator).
    LpRound,
    /// Feasibility-pump-style randomized rounding with repair
    /// (the `feaspump`-style comparator).
    Pump {
        /// Number of randomized restarts.
        restarts: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Branch & bound (the `bintprog`/`scip`-style exact comparator);
    /// returns the incumbent when the node limit is hit.
    BranchBound {
        /// Node limit.
        max_nodes: usize,
    },
}

/// D-UMP options.
#[derive(Debug, Clone)]
pub struct DumpOptions {
    /// Solver choice.
    pub solver: DumpSolver,
    /// LP options used by the LP-based solvers.
    pub lp: SimplexOptions,
}

impl Default for DumpOptions {
    fn default() -> Self {
        DumpOptions { solver: DumpSolver::Spe, lp: SimplexOptions::default() }
    }
}

/// D-UMP solution.
#[derive(Debug, Clone)]
pub struct DumpSolution {
    /// Selection indicator per pair (`y*`), as 0/1 counts: the
    /// sanitizer samples one multinomial trial per kept pair.
    pub counts: Vec<u64>,
    /// Number of pairs retained (`Σ y*`).
    pub retained: usize,
    /// Whether the solver proved optimality (only for branch & bound
    /// within limits).
    pub proven_optimal: bool,
}

/// Solve the D-UMP on a preprocessed log.
pub fn solve_dump(
    log: &SearchLog,
    params: PrivacyParams,
    opts: &DumpOptions,
) -> Result<DumpSolution, CoreError> {
    let constraints = PrivacyConstraints::build(log, params)?;
    solve_dump_with(&constraints, opts)
}

/// Solve the D-UMP given prebuilt constraints.
pub fn solve_dump_with(
    constraints: &PrivacyConstraints,
    opts: &DumpOptions,
) -> Result<DumpSolution, CoreError> {
    solve_dump_inner(constraints, opts, None)
}

impl SolveSession {
    /// Solve the D-UMP through this session. Only the LP-relaxation
    /// solve of [`DumpSolver::LpRound`] can exploit the session's warm
    /// basis across a budget sweep; the combinatorial solvers (SPE,
    /// pump, branch & bound) run exactly as in [`solve_dump_with`].
    pub fn solve_dump(
        &mut self,
        constraints: &PrivacyConstraints,
        opts: &DumpOptions,
    ) -> Result<DumpSolution, CoreError> {
        solve_dump_inner(constraints, opts, Some(self))
    }
}

fn solve_dump_inner(
    constraints: &PrivacyConstraints,
    opts: &DumpOptions,
    session: Option<&mut SolveSession>,
) -> Result<DumpSolution, CoreError> {
    if constraints.n_pairs() == 0 {
        return Ok(DumpSolution { counts: vec![], retained: 0, proven_optimal: true });
    }
    let (counts, proven) = match &opts.solver {
        DumpSolver::Spe => (spe(constraints, false), false),
        DumpSolver::SpeViolated => (spe(constraints, true), false),
        DumpSolver::LpRound => {
            let p = build_bip(constraints);
            let x = match session {
                Some(s) => {
                    let relax = s.solve(&p)?;
                    if relax.status != SolveStatus::Optimal {
                        return Err(CoreError::UnexpectedStatus("LP relaxation of D-UMP failed"));
                    }
                    lp_round_packing_from(&p, &relax.x)
                }
                None => lp_round_packing(&p, &opts.lp)
                    .ok_or(CoreError::UnexpectedStatus("LP relaxation of D-UMP failed"))?,
            };
            (x.iter().map(|&v| v.round() as u64).collect(), false)
        }
        DumpSolver::Pump { restarts, seed } => {
            let p = build_bip(constraints);
            let pump = PumpOptions { restarts: *restarts, seed: *seed, lp: opts.lp.clone() };
            let x = pump_packing(&p, &pump)
                .ok_or(CoreError::UnexpectedStatus("pump failed on D-UMP"))?;
            (x.iter().map(|&v| v.round() as u64).collect(), false)
        }
        DumpSolver::BranchBound { max_nodes } => {
            let p = build_bip(constraints);
            let bb = BbOptions { max_nodes: *max_nodes, lp: opts.lp.clone(), ..Default::default() };
            let s = solve_mip(&p, &bb);
            match s.status {
                MipStatus::Optimal | MipStatus::Feasible => (
                    s.x.iter().map(|&v| v.round() as u64).collect(),
                    s.status == MipStatus::Optimal,
                ),
                _ => return Err(CoreError::UnexpectedStatus("branch & bound found no point")),
            }
        }
    };

    verify_counts(constraints, &counts)?;
    let retained = counts.iter().filter(|&&c| c > 0).count();
    Ok(DumpSolution { counts, retained, proven_optimal: proven })
}

/// Build the packing BIP of Equation (8).
fn build_bip(constraints: &PrivacyConstraints) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    let cols: Vec<usize> = (0..constraints.n_pairs())
        .map(|_| {
            let j = p.add_col(1.0, VarBounds::unit()).expect("valid column");
            p.set_integer(j).expect("column exists");
            j
        })
        .collect();
    constraints.add_to_problem(&mut p, &cols);
    p
}

/// The SPE heuristic (Algorithm 2). `violated_only` restricts victim
/// selection to entries of currently violated rows.
fn spe(constraints: &PrivacyConstraints, violated_only: bool) -> Vec<u64> {
    let n = constraints.n_pairs();
    let m = constraints.n_rows();
    let budget = constraints.budget();

    let mut selected = vec![true; n];
    // row sums of the selected entries
    let mut row_sum = vec![0.0f64; m];
    // pair -> rows & coefficients (column view for cheap removal)
    let mut pair_rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (i, rs) in row_sum.iter_mut().enumerate() {
        for &(pj, v) in constraints.row(i) {
            *rs += v;
            pair_rows[pj].push((i, v));
        }
    }
    let mut violated = row_sum.iter().filter(|&&s| s > budget + 1e-12).count();

    // max-heap of candidate victims, ordered by coefficient
    #[derive(PartialEq)]
    struct Candidate {
        coef: f64,
        row: usize,
        pair: usize,
    }
    impl Eq for Candidate {}
    impl Ord for Candidate {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.coef
                .partial_cmp(&other.coef)
                .expect("coefficients are finite")
                .then(self.pair.cmp(&other.pair))
        }
    }
    impl PartialOrd for Candidate {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap = BinaryHeap::with_capacity(n * 2);
    for i in 0..m {
        for &(pj, v) in constraints.row(i) {
            heap.push(Candidate { coef: v, row: i, pair: pj });
        }
    }

    while violated > 0 {
        let Some(c) = heap.pop() else { break };
        if !selected[c.pair] {
            continue; // lazy deletion
        }
        if violated_only && row_sum[c.row] <= budget + 1e-12 {
            continue; // restricted variant skips satisfied rows
        }
        // eliminate the sensitive pair
        selected[c.pair] = false;
        for &(i, v) in &pair_rows[c.pair] {
            let was_violated = row_sum[i] > budget + 1e-12;
            row_sum[i] -= v;
            if was_violated && row_sum[i] <= budget + 1e-12 {
                violated -= 1;
            }
        }
    }

    selected.iter().map(|&s| u64::from(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsan_searchlog::{preprocess, SearchLogBuilder};

    /// 6 shared pairs over 4 users with mixed sensitivities.
    fn diverse_log() -> SearchLog {
        let mut b = SearchLogBuilder::new();
        let spec: [(&str, &[(&str, u64)]); 6] = [
            ("q0", &[("u1", 9), ("u2", 1)]),            // u1-dominated: large t
            ("q1", &[("u1", 1), ("u2", 1)]),            // balanced: t = 2
            ("q2", &[("u2", 3), ("u3", 3)]),            // balanced
            ("q3", &[("u3", 1), ("u4", 5)]),            // u4-heavy
            ("q4", &[("u1", 2), ("u4", 2)]),            // balanced
            ("q5", &[("u2", 1), ("u3", 1), ("u4", 1)]), // well spread
        ];
        for (q, holders) in spec {
            for &(user, c) in holders {
                b.add(user, q, &format!("{q}.com"), c).unwrap();
            }
        }
        let (log, _) = preprocess(&b.build());
        log
    }

    fn params(e_eps: f64, delta: f64) -> PrivacyParams {
        PrivacyParams::from_e_epsilon(e_eps, delta)
    }

    fn all_solvers() -> Vec<DumpSolver> {
        vec![
            DumpSolver::Spe,
            DumpSolver::SpeViolated,
            DumpSolver::LpRound,
            DumpSolver::Pump { restarts: 8, seed: 7 },
            DumpSolver::BranchBound { max_nodes: 10_000 },
        ]
    }

    #[test]
    fn every_solver_returns_feasible_binary_points() {
        let log = diverse_log();
        let c = PrivacyConstraints::build(&log, params(1.7, 0.2)).unwrap();
        for solver in all_solvers() {
            let s =
                solve_dump_with(&c, &DumpOptions { solver: solver.clone(), ..Default::default() })
                    .unwrap();
            assert!(c.satisfied_by(&s.counts, 1e-9), "{solver:?} infeasible");
            assert!(s.counts.iter().all(|&v| v <= 1), "{solver:?} not binary");
            assert_eq!(s.retained, s.counts.iter().sum::<u64>() as usize);
        }
    }

    #[test]
    fn branch_and_bound_dominates_heuristics() {
        let log = diverse_log();
        for (e, d) in [(1.1, 0.1), (1.7, 0.2), (2.3, 0.5)] {
            let c = PrivacyConstraints::build(&log, params(e, d)).unwrap();
            let exact = solve_dump_with(
                &c,
                &DumpOptions {
                    solver: DumpSolver::BranchBound { max_nodes: 50_000 },
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(exact.proven_optimal);
            for solver in all_solvers() {
                let s = solve_dump_with(&c, &DumpOptions { solver, ..Default::default() }).unwrap();
                assert!(
                    s.retained <= exact.retained,
                    "heuristic beat the proven optimum at ({e}, {d})"
                );
            }
        }
    }

    #[test]
    fn diversity_monotone_in_budget() {
        let log = diverse_log();
        let mut prev = 0usize;
        for e_eps in [1.01, 1.1, 1.4, 1.7, 2.0, 2.3] {
            let s = solve_dump(&log, params(e_eps, 0.5), &DumpOptions::default()).unwrap();
            assert!(s.retained >= prev, "diversity must grow with ε");
            prev = s.retained;
        }
    }

    #[test]
    fn generous_budget_keeps_everything() {
        let log = diverse_log();
        // budget far above the sum of all coefficients
        let s =
            solve_dump(&log, PrivacyParams::new(50.0, 0.999999), &DumpOptions::default()).unwrap();
        assert_eq!(s.retained, log.n_pairs());
    }

    #[test]
    fn spe_removes_most_sensitive_pair_first() {
        let log = diverse_log();
        // pick a budget that forces at least one removal
        let c = PrivacyConstraints::build(&log, params(1.4, 0.2)).unwrap();
        let s = solve_dump_with(&c, &DumpOptions::default()).unwrap();
        if s.retained < log.n_pairs() {
            // the globally most sensitive pair (q0: t = 10) must be gone
            let (_, pair, _) = c.max_coefficient().unwrap();
            assert_eq!(s.counts[pair], 0, "SPE must eliminate the max-t pair first");
        }
    }

    #[test]
    fn spe_violated_variant_never_retains_less() {
        // The restricted variant skips removals in satisfied rows, so it
        // can only keep more pairs (on these instances).
        let log = diverse_log();
        for (e, d) in [(1.05, 0.05), (1.4, 0.2), (2.0, 0.5)] {
            let c = PrivacyConstraints::build(&log, params(e, d)).unwrap();
            let global = solve_dump_with(&c, &DumpOptions::default()).unwrap();
            let restricted = solve_dump_with(
                &c,
                &DumpOptions { solver: DumpSolver::SpeViolated, ..Default::default() },
            )
            .unwrap();
            assert!(
                restricted.retained >= global.retained,
                "violated-only SPE retained {} < global {} at ({e}, {d})",
                restricted.retained,
                global.retained
            );
        }
    }

    #[test]
    fn session_lp_round_stays_feasible_across_budget_sweep() {
        use crate::session::SolveSession;
        use dpsan_lp::simplex::SimplexOptions;

        let log = diverse_log();
        let mut session = SolveSession::new(SimplexOptions::default());
        let opts = DumpOptions { solver: DumpSolver::LpRound, ..Default::default() };
        let exact_opts =
            DumpOptions { solver: DumpSolver::BranchBound { max_nodes: 50_000 }, ..opts.clone() };
        for e_eps in [1.1, 1.4, 1.7, 2.0, 2.3] {
            let c = PrivacyConstraints::build(&log, params(e_eps, 0.2)).unwrap();
            let warm = session.solve_dump(&c, &opts).unwrap();
            // a warm start may reach a different (equally optimal)
            // relaxation vertex than a cold solve, so the rounded
            // retained counts need not match the cold path exactly —
            // what must hold is feasibility, binariness, and the exact
            // optimum still dominating the heuristic
            assert!(c.satisfied_by(&warm.counts, 1e-9), "warm LP-round infeasible at {e_eps}");
            assert!(warm.counts.iter().all(|&v| v <= 1), "not binary at {e_eps}");
            let exact = solve_dump_with(&c, &exact_opts).unwrap();
            assert!(exact.retained >= warm.retained, "heuristic beat the optimum at {e_eps}");
        }
        assert!(session.stats().warm_starts >= 3, "budget sweep reuses the relaxation basis");
    }

    #[test]
    fn empty_constraints_trivial() {
        let log = SearchLogBuilder::new().build();
        let s = solve_dump(&log, params(2.0, 0.5), &DumpOptions::default()).unwrap();
        assert_eq!(s.retained, 0);
        assert!(s.proven_optimal);
    }
}
