//! O-UMP: the Output-size Utility-Maximizing Problem (Section 5.1).
//!
//! ```text
//! max  Σ_ij x_ij
//! s.t. ∀A_k:  Σ_{(i,j)∈A_k} x_ij ln t_ijk ≤ B,   x ≥ 0 integer
//! ```
//!
//! Solved by linear relaxation + floor (Lemma 1: `⌊x*⌋` still satisfies
//! the constraints since `M ≥ 0`). The optimal value is the maximum
//! output size λ used by Table 4 and as the upper bound of the F-UMP's
//! `|O|` parameter.

use dpsan_dp::params::PrivacyParams;
use dpsan_lp::problem::{Problem, Sense, VarBounds};
use dpsan_lp::simplex::{solve, SimplexOptions, Solution, SolveStatus};
use dpsan_searchlog::SearchLog;

use crate::constraints::PrivacyConstraints;
use crate::error::CoreError;
use crate::session::SolveSession;
use crate::ump::{floor_counts, verify_counts};

/// O-UMP options.
#[derive(Debug, Clone)]
pub struct OumpOptions {
    /// LP solver options.
    pub lp: SimplexOptions,
    /// Cap every output count at its input count (`x_ij ≤ c_ij`).
    ///
    /// The paper's Equation-(4) constraint set has no upper bounds, under
    /// which the LP optimum λ is *provably linear* in the budget
    /// `B = min{ε, ln 1/(1−δ)}` — yet the paper's Table 4 is strongly
    /// sublinear in `B`, so the authors' implementation must have bounded
    /// the counts. Capping at `c_ij` is the natural choice (a sanitized
    /// pair should not out-support its input; every example in the paper
    /// satisfies it) and reproduces the saturation shape. Upper bounds
    /// never break Lemma 1: `⌊x*⌋ ≤ x* ≤ c`.
    pub cap_at_input: bool,
    /// Accept the best iterate found so far when the LP hits
    /// `lp.max_iter` before proving optimality ("anytime" mode).
    ///
    /// Sound because the O-UMP starts primal feasible (x = 0 satisfies
    /// `Mx ≤ b`, `b > 0`) and every phase-2 simplex iterate stays
    /// primal feasible — a capped solve sacrifices utility (a smaller
    /// λ), never privacy. [`verify_counts`] still checks the returned
    /// counts against every constraint as a backstop. Off by default:
    /// an uncapped solve that exhausts its iteration budget remains an
    /// error.
    pub anytime: bool,
}

impl Default for OumpOptions {
    fn default() -> Self {
        OumpOptions { lp: SimplexOptions::default(), cap_at_input: true, anytime: false }
    }
}

/// O-UMP solution.
#[derive(Debug, Clone)]
pub struct OumpSolution {
    /// Floored optimal counts `⌊x*_ij⌋`, one per pair.
    pub counts: Vec<u64>,
    /// The LP-optimal counts before flooring.
    pub lp_counts: Vec<f64>,
    /// The integer maximum output size `λ = Σ ⌊x*_ij⌋`.
    pub lambda: u64,
    /// The LP optimum before flooring.
    pub lp_value: f64,
    /// Simplex iterations used.
    pub iterations: usize,
    /// Whether the solve stopped at the iteration budget (anytime
    /// mode) rather than at a proven optimum. The counts are feasible
    /// either way; a capped λ is a lower bound on the optimal one.
    pub capped: bool,
}

/// Solve the O-UMP on a preprocessed log.
pub fn solve_oump(
    log: &SearchLog,
    params: PrivacyParams,
    opts: &OumpOptions,
) -> Result<OumpSolution, CoreError> {
    let constraints = PrivacyConstraints::build(log, params)?;
    solve_oump_with(&constraints, opts)
}

/// Solve the O-UMP given prebuilt constraints (lets callers cache the
/// constraint system across parameter grids).
pub fn solve_oump_with(
    constraints: &PrivacyConstraints,
    opts: &OumpOptions,
) -> Result<OumpSolution, CoreError> {
    solve_oump_inner(constraints, opts, None)
}

impl SolveSession {
    /// Solve the O-UMP through this session, reusing the previous
    /// optimal basis (ideal for budget sweeps over one constraint
    /// system). O-UMP grid steps are *declared* rhs-only
    /// perturbations: for a fixed preprocessed log only the row
    /// right-hand side `B` moves, so consecutive solves restore the
    /// previous basis and dual-reoptimize in a handful of pivots. The
    /// session's LP options override `opts.lp`.
    pub fn solve_oump(
        &mut self,
        constraints: &PrivacyConstraints,
        opts: &OumpOptions,
    ) -> Result<OumpSolution, CoreError> {
        solve_oump_inner(constraints, opts, Some(self))
    }
}

/// Build the O-UMP linear program of Section 5.1 over the polytope.
fn build_problem(constraints: &PrivacyConstraints, opts: &OumpOptions) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    let cols: Vec<usize> = (0..constraints.n_pairs())
        .map(|pi| {
            let upper = if opts.cap_at_input {
                constraints.pair_totals()[pi] as f64
            } else {
                f64::INFINITY
            };
            p.add_col(1.0, VarBounds { lower: 0.0, upper }).expect("valid column")
        })
        .collect();
    constraints.add_to_problem(&mut p, &cols);
    p
}

fn solve_oump_inner(
    constraints: &PrivacyConstraints,
    opts: &OumpOptions,
    session: Option<&mut SolveSession>,
) -> Result<OumpSolution, CoreError> {
    if constraints.n_pairs() == 0 {
        return Ok(OumpSolution {
            counts: vec![],
            lp_counts: vec![],
            lambda: 0,
            lp_value: 0.0,
            iterations: 0,
            capped: false,
        });
    }

    let p = build_problem(constraints, opts);
    let sol: Solution = match session {
        // budget sweeps move only the row rhs: declare it so the
        // session skips the fingerprint scan and goes straight to the
        // dual-reoptimization attempt
        Some(s) => s.solve_rhs_step(&p)?,
        None => solve(&p, &opts.lp)?,
    };
    let capped = sol.status == SolveStatus::IterationLimit && opts.anytime;
    if sol.status != SolveStatus::Optimal && !capped {
        return Err(CoreError::UnexpectedStatus(match sol.status {
            SolveStatus::Infeasible => "O-UMP reported infeasible (impossible for Mx ≤ b, b > 0)",
            SolveStatus::Unbounded => "O-UMP reported unbounded (impossible for M ≥ 0)",
            _ => "iteration limit on O-UMP",
        }));
    }

    let counts = floor_counts(&sol.x);
    verify_counts(constraints, &counts)?;
    let lambda = counts.iter().sum();
    Ok(OumpSolution {
        counts,
        lp_counts: sol.x,
        lambda,
        lp_value: sol.objective,
        iterations: sol.iterations,
        capped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsan_searchlog::{preprocess, SearchLogBuilder};

    fn two_pair_log() -> SearchLog {
        let mut b = SearchLogBuilder::new();
        b.add("u1", "google", "google.com", 15).unwrap();
        b.add("u2", "google", "google.com", 7).unwrap();
        b.add("u3", "google", "google.com", 17).unwrap();
        b.add("u1", "book", "amazon.com", 3).unwrap();
        b.add("u3", "book", "amazon.com", 1).unwrap();
        let (log, _) = preprocess(&b.build());
        log
    }

    fn params(e_eps: f64, delta: f64) -> PrivacyParams {
        PrivacyParams::from_e_epsilon(e_eps, delta)
    }

    #[test]
    fn counts_satisfy_constraints() {
        let log = two_pair_log();
        let s = solve_oump(&log, params(2.0, 0.5), &OumpOptions::default()).unwrap();
        let c = PrivacyConstraints::build(&log, params(2.0, 0.5)).unwrap();
        assert!(c.satisfied_by(&s.counts, 1e-9));
        assert!(s.lambda > 0, "a positive output size is achievable");
        assert_eq!(s.lambda, s.counts.iter().sum::<u64>());
        assert!(s.lp_value >= s.lambda as f64 - 1e-6, "floor cannot exceed the LP optimum");
    }

    #[test]
    fn lambda_monotone_in_epsilon() {
        let log = two_pair_log();
        let mut prev = 0u64;
        for e_eps in [1.01, 1.1, 1.4, 2.0, 2.3] {
            let s = solve_oump(&log, params(e_eps, 0.8), &OumpOptions::default()).unwrap();
            assert!(s.lambda >= prev, "λ must grow with ε (e^ε={e_eps})");
            prev = s.lambda;
        }
    }

    #[test]
    fn lambda_monotone_in_delta() {
        let log = two_pair_log();
        let mut prev = 0u64;
        for delta in [1e-3, 1e-2, 0.1, 0.5, 0.8] {
            let s = solve_oump(&log, params(2.3, delta), &OumpOptions::default()).unwrap();
            assert!(s.lambda >= prev, "λ must grow with δ (δ={delta})");
            prev = s.lambda;
        }
    }

    #[test]
    fn lambda_depends_only_on_collapsed_budget() {
        let log = two_pair_log();
        // ε = ln 1.4 binds in both cells
        let a = solve_oump(&log, params(1.4, 0.5), &OumpOptions::default()).unwrap();
        let b = solve_oump(&log, params(1.4, 0.8), &OumpOptions::default()).unwrap();
        assert_eq!(a.lambda, b.lambda, "Table 4 plateau: same budget, same λ");
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn lp_value_scales_linearly_in_budget_without_caps() {
        // λ_LP(B) = B · λ_LP(1) for the pure Equation-(4) polytope —
        // the property that makes the paper's Table 4 non-reproducible
        // from the published constraint set alone (see DESIGN.md)
        let log = two_pair_log();
        let no_cap = OumpOptions { cap_at_input: false, ..Default::default() };
        let s1 = solve_oump(&log, PrivacyParams::new(0.2, 0.9999), &no_cap).unwrap();
        let s2 = solve_oump(&log, PrivacyParams::new(0.4, 0.9999), &no_cap).unwrap();
        assert!(
            (s2.lp_value - 2.0 * s1.lp_value).abs() < 1e-6,
            "{} vs 2×{}",
            s2.lp_value,
            s1.lp_value
        );
    }

    #[test]
    fn caps_bound_lambda_by_input_size() {
        let log = two_pair_log();
        // a budget beyond every row's worst case (Σ c·ln t < 25 here):
        // with caps, λ saturates at |D| = Σ c_ij
        let generous = PrivacyParams::new(100.0, 1.0 - 1e-12);
        let s = solve_oump(&log, generous, &OumpOptions::default()).unwrap();
        assert_eq!(s.lambda, log.size(), "caps saturate λ at Σ c_ij");
        // without caps the same budget yields a larger output
        let unc =
            solve_oump(&log, generous, &OumpOptions { cap_at_input: false, ..Default::default() })
                .unwrap();
        assert!(unc.lambda > s.lambda);
    }

    #[test]
    fn empty_log_yields_zero_lambda() {
        let log = SearchLogBuilder::new().build();
        let s = solve_oump(&log, params(2.0, 0.5), &OumpOptions::default()).unwrap();
        assert_eq!(s.lambda, 0);
        assert!(s.counts.is_empty());
    }

    #[test]
    fn anytime_cap_returns_feasible_incumbent() {
        let log = two_pair_log();
        let p = params(2.0, 0.5);
        // one iteration is never enough to prove optimality here
        let lp = SimplexOptions { max_iter: 1, ..SimplexOptions::default() };
        // without anytime, hitting the budget is an error
        let strict = OumpOptions { lp: lp.clone(), ..Default::default() };
        assert!(solve_oump(&log, p, &strict).is_err());
        // with anytime, the incumbent comes back flagged and feasible
        let anytime = OumpOptions { lp, anytime: true, ..Default::default() };
        let s = solve_oump(&log, p, &anytime).unwrap();
        assert!(s.capped, "one iteration cannot prove optimality on this LP");
        let c = PrivacyConstraints::build(&log, p).unwrap();
        assert!(c.satisfied_by(&s.counts, 1e-9), "capped counts stay privacy-feasible");
        // the capped λ lower-bounds the optimum
        let full = solve_oump(&log, p, &OumpOptions::default()).unwrap();
        assert!(!full.capped);
        assert!(s.lambda <= full.lambda);
    }

    #[test]
    fn tiny_budget_still_feasible() {
        let log = two_pair_log();
        let s = solve_oump(&log, PrivacyParams::new(1e-6, 1e-6), &OumpOptions::default()).unwrap();
        // counts floor to zero but the solve must succeed
        assert_eq!(s.lambda, 0);
    }
}
