//! End-to-end differential privacy of the count computation (§4.2).
//!
//! The multinomial sampling is `(ε, δ)`-probabilistically DP by
//! Theorem 1, but the *computation of the optimal counts* also reads the
//! data. The paper's recipe:
//!
//! 1. bound the leave-one-out sensitivity of every pair's optimal count
//!    by `d`, removing user logs that cause larger swings
//!    ([`bound_sensitivity`]),
//! 2. add `Lap(d/ε′)` to each optimal count ([`noisy_counts`]),
//! 3. since noise can push counts outside the privacy polytope, repair
//!    them before sampling ([`repair_counts`]) — the paper notes noisy
//!    counts only *likely* satisfy the constraints; repairing restores
//!    the guarantee at a small utility cost.

use rand::Rng;

use dpsan_dp::laplace::LaplaceNoise;
use dpsan_dp::params::PrivacyParams;
use dpsan_lp::simplex::SimplexOptions;
use dpsan_searchlog::{PairId, SearchLog, UserId};

use crate::constraints::PrivacyConstraints;
use crate::error::CoreError;
use crate::ump::output_size::{solve_oump, OumpOptions};

/// Remove user logs whose presence moves any pair's O-UMP optimal count
/// by more than `d` (one leave-one-out pass, as in §4.2). Returns the
/// reduced log and the removed users.
///
/// This is `O(#users)` LP solves — intended for small logs and for
/// demonstrating the §4.2 procedure, not for the full AOL scale.
pub fn bound_sensitivity(
    log: &SearchLog,
    params: PrivacyParams,
    d: f64,
    lp: &SimplexOptions,
) -> Result<(SearchLog, Vec<UserId>), CoreError> {
    assert!(d > 0.0, "sensitivity bound must be positive");
    let opts = OumpOptions { lp: lp.clone(), ..Default::default() };
    let base = solve_oump(log, params, &opts)?;

    let mut removed = Vec::new();
    for user in log.users_with_logs() {
        // D - A_k: drop all of this user's pairs from the log
        let keep: Vec<bool> = (0..log.n_pairs())
            .map(|pi| {
                let p = PairId::from_index(pi);
                log.holders(p).any(|t| t.user != user) // pair survives if another holder exists
            })
            .collect();
        let (without, mapping) = log.retain_pairs(&keep);
        // the neighbor must itself be preprocessed (pairs may have become
        // single-holder after removing the user's counts) — rebuild
        // without this user's records entirely:
        let without = drop_user(&without, user);
        let (without, _) = dpsan_searchlog::preprocess(&without);
        if without.n_pairs() == 0 {
            continue;
        }
        let neighbor = solve_oump(&without, params, &opts)?;
        // compare counts pair-by-pair through the id mappings
        let mut worst = 0.0f64;
        for (pi, (&bc, &mid)) in base.counts.iter().zip(&mapping).enumerate() {
            let a = bc as f64;
            // `mid` only says the pair survived retain_pairs; its target id
            // is stale after drop_user + preprocess, so re-look-up by key
            let b = if mid.is_some() {
                let (q, u) = log.pair_key(PairId::from_index(pi));
                without.pair_id(q, u).map_or(0.0, |np| neighbor.counts[np.index()] as f64)
            } else {
                0.0
            };
            worst = worst.max((a - b).abs());
        }
        if worst > d {
            removed.push(user);
        }
    }

    if removed.is_empty() {
        return Ok((log.clone(), removed));
    }
    let mut result = log.clone();
    for &user in &removed {
        result = drop_user(&result, user);
    }
    let (result, _) = dpsan_searchlog::preprocess(&result);
    Ok((result, removed))
}

/// A copy of `log` without any record of `user`.
fn drop_user(log: &SearchLog, user: UserId) -> SearchLog {
    let mut b = dpsan_searchlog::SearchLogBuilder::with_vocabulary_of(log);
    for r in log.records() {
        if r.user != user {
            b.add_record(r).expect("records are valid");
        }
    }
    b.build()
}

/// Add `Lap(d/ε′)` to each count (§4.2).
pub fn noisy_counts<R: Rng>(rng: &mut R, counts: &[u64], d: f64, epsilon_prime: f64) -> Vec<f64> {
    let noise = LaplaceNoise::for_sensitivity(d, epsilon_prime);
    counts.iter().map(|&c| c as f64 + noise.sample(rng)).collect()
}

/// Repair noisy counts into the privacy polytope: clamp to `≥ 0`,
/// floor, then scale any violated row's pairs down until every
/// constraint holds. Deterministic and always terminates (zero is
/// feasible).
pub fn repair_counts(constraints: &PrivacyConstraints, noisy: &[f64]) -> Vec<u64> {
    let mut counts: Vec<u64> =
        noisy.iter().map(|&v| if v <= 0.0 { 0 } else { v.floor() as u64 }).collect();
    for _ in 0..64 {
        let x: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let activity = constraints.row_activity(&x);
        let budget = constraints.budget();
        let mut violated = false;
        for (i, &a) in activity.iter().enumerate() {
            if a > budget + 1e-12 {
                violated = true;
                let scale = budget / a;
                for &(p, _) in constraints.row(i) {
                    counts[p] = (counts[p] as f64 * scale).floor() as u64;
                }
            }
        }
        if !violated {
            return counts;
        }
    }
    // fallback: zero is always private
    vec![0; noisy.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsan_searchlog::{preprocess, SearchLogBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_log() -> SearchLog {
        let mut b = SearchLogBuilder::new();
        let spec: [(&str, &[(&str, u64)]); 3] = [
            ("q0", &[("u1", 5), ("u2", 5)]),
            ("q1", &[("u2", 2), ("u3", 4)]),
            ("q2", &[("u1", 3), ("u3", 3)]),
        ];
        for (q, holders) in spec {
            for &(user, c) in holders {
                b.add(user, q, &format!("{q}.com"), c).unwrap();
            }
        }
        let (log, _) = preprocess(&b.build());
        log
    }

    fn params() -> PrivacyParams {
        PrivacyParams::from_e_epsilon(2.0, 0.5)
    }

    #[test]
    fn repair_accepts_feasible_counts() {
        let log = small_log();
        let c = PrivacyConstraints::build(&log, params()).unwrap();
        let counts = repair_counts(&c, &[0.7, 0.2, 0.9]);
        assert!(c.satisfied_by(&counts, 1e-9));
        assert_eq!(counts, vec![0, 0, 0], "floors of sub-1 noisy counts");
    }

    #[test]
    fn repair_fixes_violations() {
        let log = small_log();
        let c = PrivacyConstraints::build(&log, params()).unwrap();
        let counts = repair_counts(&c, &[1000.0, 1000.0, 1000.0]);
        assert!(c.satisfied_by(&counts, 1e-9));
    }

    #[test]
    fn repair_clamps_negatives() {
        let log = small_log();
        let c = PrivacyConstraints::build(&log, params()).unwrap();
        let counts = repair_counts(&c, &[-5.0, -0.1, 2.0]);
        assert_eq!(counts[0], 0);
        assert_eq!(counts[1], 0);
        assert!(c.satisfied_by(&counts, 1e-9));
    }

    #[test]
    fn noise_has_requested_scale() {
        let mut rng = StdRng::seed_from_u64(5);
        let counts = vec![100u64; 20_000];
        let noisy = noisy_counts(&mut rng, &counts, 2.0, 1.0);
        let mean = noisy.iter().sum::<f64>() / noisy.len() as f64;
        let var = noisy.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / noisy.len() as f64;
        assert!((mean - 100.0).abs() < 0.2, "mean {mean}");
        // Var = 2 (d/ε)² = 8
        assert!((var - 8.0).abs() < 1.0, "var {var}");
    }

    #[test]
    fn bound_sensitivity_keeps_or_removes() {
        let log = small_log();
        // enormous d: nobody is removed
        let (kept, removed) =
            bound_sensitivity(&log, params(), 1e6, &SimplexOptions::default()).unwrap();
        assert!(removed.is_empty());
        assert_eq!(kept.n_pairs(), log.n_pairs());

        // minuscule d: users with influence are removed
        let (reduced, removed) =
            bound_sensitivity(&log, params(), 1e-3, &SimplexOptions::default()).unwrap();
        if !removed.is_empty() {
            assert!(reduced.size() < log.size());
        }
    }
}
