//! Closed-form verification of the privacy analysis (Section 4).
//!
//! For tiny logs, everything in the paper's proofs can be computed
//! exactly:
//!
//! * Eq. 2 — `Pr[R(D) ∈ Ω₁] = 1 − Π (1 − c_ijk/c_ij)^{x_ij}` per user,
//! * Eq. 3 — the worst-case ratio `Π t_ijk^{x_ij}` per user,
//! * the full joint output distribution of the multinomial sampler
//!   (Eq. 1 factorizes over pairs), enabling an *exhaustive* check of
//!   Definition 2 against any neighbor `D′ = D − A_k` and of
//!   Proposition 1 (probabilistic ⇒ indistinguishability DP).

use std::collections::HashMap;

use dpsan_dp::params::PrivacyParams;
use dpsan_dp::verify::{enumerate_compositions, multinomial_pmf, DpCheck};
use dpsan_searchlog::{PairId, SearchLog, UserId};

/// Exact per-user evaluation of the Theorem 1 conditions at integer
/// counts.
#[derive(Debug, Clone)]
pub struct Theorem1Report {
    /// Condition 1: no pair held entirely by one user has a positive
    /// count.
    pub condition1_ok: bool,
    /// `max_k Σ_{A_k} x ln t` — must be ≤ ε (Condition 2).
    pub worst_log_ratio: f64,
    /// `max_k (1 − Π (1 − c_ijk/c_ij)^{x_ij})` — must be ≤ δ
    /// (Condition 3, via Eq. 2).
    pub worst_delta_mass: f64,
    /// Whether Condition 2 holds at the given ε.
    pub condition2_ok: bool,
    /// Whether Condition 3 holds at the given δ.
    pub condition3_ok: bool,
}

impl Theorem1Report {
    /// All three conditions hold.
    pub fn ok(&self) -> bool {
        self.condition1_ok && self.condition2_ok && self.condition3_ok
    }
}

/// Evaluate Theorem 1 exactly at integer counts.
pub fn theorem1_report(log: &SearchLog, counts: &[u64], params: PrivacyParams) -> Theorem1Report {
    assert_eq!(counts.len(), log.n_pairs(), "one count per pair");
    let mut condition1_ok = true;
    for (pi, &c) in counts.iter().enumerate() {
        if c > 0 && log.n_holders(PairId::from_index(pi)) < 2 {
            condition1_ok = false;
        }
    }

    let mut worst_log_ratio = 0.0f64;
    let mut worst_delta_mass = 0.0f64;
    for user in log.users_with_logs() {
        let mut log_ratio = 0.0;
        let mut ln_survive = 0.0;
        for e in log.user_log(user) {
            let c = log.pair_total(e.pair) as f64;
            let ck = e.count as f64;
            let x = counts[e.pair.index()] as f64;
            log_ratio += x * (c / (c - ck)).ln();
            ln_survive += x * ((c - ck) / c).ln();
        }
        worst_log_ratio = worst_log_ratio.max(log_ratio);
        worst_delta_mass = worst_delta_mass.max(1.0 - ln_survive.exp());
    }

    Theorem1Report {
        condition1_ok,
        worst_log_ratio,
        worst_delta_mass,
        condition2_ok: worst_log_ratio <= params.epsilon() + 1e-9,
        condition3_ok: worst_delta_mass <= params.delta() + 1e-9,
    }
}

/// `Pr[R(D) ∈ Ω₁]` for the neighbor differing in `user` (Eq. 2): the
/// probability that `user` is sampled at least once.
pub fn pr_user_sampled(log: &SearchLog, counts: &[u64], user: UserId) -> f64 {
    let mut ln_survive = 0.0;
    for e in log.user_log(user) {
        let c = log.pair_total(e.pair) as f64;
        let ck = e.count as f64;
        ln_survive += counts[e.pair.index()] as f64 * ((c - ck) / c).ln();
    }
    1.0 - ln_survive.exp()
}

/// An output of the sampler as a flat triplet-count vector (one slot per
/// `(pair, holder)` of the input log), hashable for distribution maps.
pub type OutputKey = Vec<u64>;

/// Number of outputs the exhaustive enumeration would produce
/// (`Π_p C(x_p + h_p − 1, h_p − 1)`); used to guard the cross-product.
pub fn output_space_size(log: &SearchLog, counts: &[u64]) -> f64 {
    let mut total = 1.0f64;
    for (pi, &x) in counts.iter().enumerate() {
        let h = log.n_holders(PairId::from_index(pi)) as u64;
        // C(x + h - 1, h - 1)
        let mut ways = 1.0f64;
        for i in 0..h - 1 {
            ways *= (x + i + 1) as f64 / (i + 1) as f64;
        }
        total *= ways;
    }
    total
}

/// The exact joint output distribution of the sampler run on `log` with
/// the given per-pair trial counts, where each holder's weight comes
/// from `weight_of(pair, user)`. Panics if the output space exceeds
/// `max_outputs`.
fn joint_distribution(
    log: &SearchLog,
    counts: &[u64],
    max_outputs: usize,
    mut weight_of: impl FnMut(PairId, UserId) -> u64,
) -> HashMap<OutputKey, f64> {
    let mut dist: HashMap<OutputKey, f64> = HashMap::new();
    dist.insert(Vec::new(), 1.0);
    for (pi, &cnt) in counts.iter().enumerate() {
        let p = PairId::from_index(pi);
        let holders: Vec<UserId> = log.holders(p).map(|t| t.user).collect();
        let weights: Vec<u64> = holders.iter().map(|&u| weight_of(p, u)).collect();
        let mut next: HashMap<OutputKey, f64> = HashMap::new();
        for comp in enumerate_compositions(cnt, holders.len()) {
            let pr = multinomial_pmf(&weights, &comp);
            if pr == 0.0 {
                continue;
            }
            for (key, &base) in &dist {
                let mut k = key.clone();
                k.extend_from_slice(&comp);
                next.insert(k, base * pr);
            }
            assert!(next.len() <= max_outputs, "output space too large to enumerate");
        }
        dist = next;
    }
    dist
}

/// Exhaustively check Definition 2 for the neighbor pair
/// `(D, D′ = D − A_user)`: builds both output distributions, splits Ω
/// into Ω₁ = {outputs sampling `user`} and Ω₂, and measures the δ mass
/// and the worst Ω₂ log-ratio. Only for tiny logs
/// (`output_space_size ≤ max_outputs`).
pub fn exhaustive_neighbor_check(
    log: &SearchLog,
    counts: &[u64],
    user: UserId,
    max_outputs: usize,
) -> DpCheck {
    assert!(
        output_space_size(log, counts) <= max_outputs as f64,
        "output space too large; shrink the log or the counts"
    );
    // slot layout: per pair, holders in order; remember which slots
    // belong to `user`
    let mut user_slots = Vec::new();
    let mut slot = 0usize;
    for pi in 0..log.n_pairs() {
        for t in log.holders(PairId::from_index(pi)) {
            if t.user == user {
                user_slots.push(slot);
            }
            slot += 1;
        }
    }

    let dist_d = joint_distribution(log, counts, max_outputs, |p, u| log.triplet_count(p, u));
    // D′ removes the user's log: their weight is 0 everywhere
    let dist_d_prime = joint_distribution(log, counts, max_outputs, |p, u| {
        if u == user {
            0
        } else {
            log.triplet_count(p, u)
        }
    });

    dpsan_dp::verify::check_probabilistic_dp(&dist_d, &dist_d_prime, |o: &OutputKey| {
        user_slots.iter().any(|&s| o[s] > 0)
    })
}

/// The Proposition 1 excess for the same neighbor pair: worst-event
/// violation of `Pr[R(D) ∈ Ô] ≤ e^ε Pr[R(D′) ∈ Ô] + δ` (must be ≤ δ
/// whenever the probabilistic check passes at `(ε, δ)`).
pub fn indistinguishability_excess(
    log: &SearchLog,
    counts: &[u64],
    user: UserId,
    epsilon: f64,
    max_outputs: usize,
) -> f64 {
    let dist_d = joint_distribution(log, counts, max_outputs, |p, u| log.triplet_count(p, u));
    let dist_d_prime = joint_distribution(log, counts, max_outputs, |p, u| {
        if u == user {
            0
        } else {
            log.triplet_count(p, u)
        }
    });
    let a = dpsan_dp::verify::check_indistinguishability(&dist_d, &dist_d_prime, epsilon);
    let b = dpsan_dp::verify::check_indistinguishability(&dist_d_prime, &dist_d, epsilon);
    a.max(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::PrivacyConstraints;
    use crate::ump::output_size::{solve_oump, OumpOptions};
    use dpsan_searchlog::{preprocess, SearchLogBuilder};

    /// Tiny log: 2 pairs, few holders, so the output space is small.
    fn tiny_log() -> SearchLog {
        let mut b = SearchLogBuilder::new();
        b.add("u1", "q0", "q0.com", 3).unwrap();
        b.add("u2", "q0", "q0.com", 2).unwrap();
        b.add("u2", "q1", "q1.com", 1).unwrap();
        b.add("u3", "q1", "q1.com", 2).unwrap();
        let (log, _) = preprocess(&b.build());
        log
    }

    fn params() -> PrivacyParams {
        PrivacyParams::from_e_epsilon(2.0, 0.5)
    }

    #[test]
    fn theorem1_holds_at_oump_optimum() {
        let log = tiny_log();
        let s = solve_oump(&log, params(), &OumpOptions::default()).unwrap();
        let rep = theorem1_report(&log, &s.counts, params());
        assert!(rep.ok(), "{rep:?}");
        assert!(rep.worst_log_ratio <= params().epsilon() + 1e-9);
        assert!(rep.worst_delta_mass <= params().delta() + 1e-9);
    }

    #[test]
    fn theorem1_detects_violations() {
        let log = tiny_log();
        let rep = theorem1_report(&log, &[50, 50], params());
        assert!(!rep.condition2_ok || !rep.condition3_ok);
    }

    #[test]
    fn eq2_matches_monte_carlo() {
        use dpsan_dp::multinomial::{sample_multinomial, MultinomialStrategy};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let log = tiny_log();
        let counts = vec![2u64, 1];
        let u2 = UserId(log.users().get("u2").unwrap());
        let exact = pr_user_sampled(&log, &counts, u2);

        // Monte Carlo: sample both pairs and check if u2 appears
        let mut rng = StdRng::seed_from_u64(11);
        let runs = 200_000;
        let mut hits = 0usize;
        for _ in 0..runs {
            let mut sampled = false;
            for (pi, &cnt) in counts.iter().enumerate() {
                let p = PairId::from_index(pi);
                let holders: Vec<_> = log.holders(p).collect();
                let weights: Vec<u64> = holders.iter().map(|t| t.count).collect();
                let out = sample_multinomial(&mut rng, &weights, cnt, MultinomialStrategy::Auto);
                for (h, &x) in holders.iter().zip(&out) {
                    if h.user == u2 && x > 0 {
                        sampled = true;
                    }
                }
            }
            hits += usize::from(sampled);
        }
        let mc = hits as f64 / runs as f64;
        assert!((mc - exact).abs() < 0.005, "MC {mc} vs exact {exact}");
    }

    #[test]
    fn exhaustive_check_certifies_theorem1_bounds() {
        let log = tiny_log();
        let s = solve_oump(&log, params(), &OumpOptions::default()).unwrap();
        let rep = theorem1_report(&log, &s.counts, params());
        for user in log.users_with_logs() {
            let check = exhaustive_neighbor_check(&log, &s.counts, user, 500_000);
            // the enumerated δ mass equals Eq. 2 exactly
            let eq2 = pr_user_sampled(&log, &s.counts, user);
            assert!((check.delta_mass - eq2).abs() < 1e-9, "{} vs {}", check.delta_mass, eq2);
            // the worst Ω₂ ratio is within the Theorem 1 bound
            assert!(
                check.max_log_ratio <= rep.worst_log_ratio + 1e-9,
                "ratio {} exceeds bound {}",
                check.max_log_ratio,
                rep.worst_log_ratio
            );
            assert!(check.satisfies(params().epsilon(), params().delta()));
        }
    }

    #[test]
    fn proposition1_implied_by_probabilistic_dp() {
        let log = tiny_log();
        let s = solve_oump(&log, params(), &OumpOptions::default()).unwrap();
        for user in log.users_with_logs() {
            let excess =
                indistinguishability_excess(&log, &s.counts, user, params().epsilon(), 500_000);
            assert!(
                excess <= params().delta() + 1e-9,
                "Proposition 1 violated: excess {excess} > δ"
            );
        }
    }

    #[test]
    fn constraints_and_theorem1_agree() {
        // the linearized constraint system and the exact product form
        // must agree on feasibility at integer points
        let log = tiny_log();
        let c = PrivacyConstraints::build(&log, params()).unwrap();
        for counts in [[0u64, 0], [1, 0], [0, 1], [1, 1], [2, 1], [3, 2], [10, 10]] {
            let lin = c.satisfied_by(&counts, 1e-9);
            let rep = theorem1_report(&log, &counts, params());
            // budget = min(ε, ln 1/(1−δ)): linear feasibility ⇔ both
            // exact conditions (they are the same inequality in logs)
            assert_eq!(lin, rep.condition2_ok && rep.condition3_ok, "at {counts:?}");
        }
    }

    #[test]
    fn output_space_size_formula() {
        let log = tiny_log();
        // pair q0: 2 holders, x=2 -> C(3,1)=3; q1: 2 holders, x=1 -> 2
        assert_eq!(output_space_size(&log, &[2, 1]), 6.0);
    }

    #[test]
    #[should_panic(expected = "output space too large")]
    fn exhaustive_check_guards_explosion() {
        let log = tiny_log();
        let user = log.users_with_logs().next().unwrap();
        let _ = exhaustive_neighbor_check(&log, &[1_000_000, 1_000_000], user, 1000);
    }
}
