//! Warm-started solve sessions for parameter sweeps.
//!
//! The evaluation workload (Tables 4–6, Figures 3–4) re-solves the same
//! privacy polytope across an `(ε, δ)`/budget grid: the constraint
//! matrix is fixed and only the right-hand side (budget, output size)
//! moves between adjacent grid points. A [`SolveSession`] owns the LP
//! options plus the [`Basis`] snapshot of the previous optimum and
//! feeds it to [`dpsan_lp::simplex::solve_with_basis`], so successive
//! solves skip phase 1 and typically re-optimize in a handful of
//! pivots. A snapshot that no longer fits (shape change, stale vertex)
//! silently degrades to a cold solve — sessions never change *what* is
//! computed, only how fast.

use dpsan_lp::error::LpError;
use dpsan_lp::problem::Problem;
use dpsan_lp::simplex::{solve_with_basis, Basis, SimplexOptions, Solution, SolveStatus};

/// Counters describing how a session's solves went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Total solves issued through the session.
    pub solves: usize,
    /// Solves that actually started from the previous optimal basis.
    pub warm_starts: usize,
    /// Simplex iterations summed over all solves.
    pub iterations: usize,
}

/// A solver session that carries the optimal basis (and thereby the
/// factorization work) from one solve to the next.
///
/// Use one session per *sweep of related problems* (e.g. one shard of a
/// budget grid). Interleaving unrelated problem shapes through a single
/// session is safe but defeats the warm start, since each shape change
/// discards the snapshot.
#[derive(Debug, Clone)]
pub struct SolveSession {
    lp: SimplexOptions,
    basis: Option<Basis>,
    stats: SessionStats,
}

impl SolveSession {
    /// New session with the given LP options and no snapshot.
    pub fn new(lp: SimplexOptions) -> SolveSession {
        SolveSession { lp, basis: None, stats: SessionStats::default() }
    }

    /// The LP options every solve of this session uses.
    pub fn lp_options(&self) -> &SimplexOptions {
        &self.lp
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Drop the stored snapshot (the next solve starts cold).
    pub fn reset(&mut self) {
        self.basis = None;
    }

    /// Solve `problem`, warm-starting from the previous optimum when
    /// possible, and stash the new optimal basis for the next call.
    pub fn solve(&mut self, problem: &Problem) -> Result<Solution, LpError> {
        let out = solve_with_basis(problem, &self.lp, self.basis.as_ref())?;
        self.stats.solves += 1;
        if out.warm_used {
            self.stats.warm_starts += 1;
        }
        self.stats.iterations += out.solution.iterations;
        self.basis = if out.solution.status == SolveStatus::Optimal { out.basis } else { None };
        Ok(out.solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsan_lp::problem::{RowBounds, Sense, VarBounds};

    /// `max x0 + x1` s.t. `x0 + x1 ≤ rhs`, `x ∈ [0, 10]`.
    fn capped(rhs: f64) -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_col(1.0, VarBounds { lower: 0.0, upper: 10.0 }).unwrap();
        let b = p.add_col(1.0, VarBounds { lower: 0.0, upper: 10.0 }).unwrap();
        p.add_row(RowBounds::at_most(rhs), &[(a, 1.0), (b, 1.0)]).unwrap();
        p
    }

    #[test]
    fn sweep_warm_starts_after_first_solve() {
        let mut s = SolveSession::new(SimplexOptions::default());
        for (i, rhs) in [2.0, 3.0, 5.0, 8.0].into_iter().enumerate() {
            let sol = s.solve(&capped(rhs)).unwrap();
            assert_eq!(sol.status, SolveStatus::Optimal);
            assert!((sol.objective - rhs).abs() < 1e-9);
            let st = s.stats();
            assert_eq!(st.solves, i + 1);
        }
        assert!(s.stats().warm_starts >= 3, "rhs-only sweeps reuse the basis: {:?}", s.stats());
    }

    #[test]
    fn shape_change_degrades_to_cold() {
        let mut s = SolveSession::new(SimplexOptions::default());
        s.solve(&capped(2.0)).unwrap();
        // different shape: two rows
        let mut p = capped(4.0);
        p.add_row(RowBounds::at_most(3.0), &[(0, 1.0)]).unwrap();
        let sol = s.solve(&p).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_eq!(s.stats().warm_starts, 0, "mismatched shape cannot warm-start");
        // and the session recovers: next same-shape solve warms again
        s.solve(&{
            let mut q = capped(5.0);
            q.add_row(RowBounds::at_most(4.0), &[(0, 1.0)]).unwrap();
            q
        })
        .unwrap();
        assert_eq!(s.stats().warm_starts, 1);
    }

    #[test]
    fn reset_forces_cold() {
        let mut s = SolveSession::new(SimplexOptions::default());
        s.solve(&capped(2.0)).unwrap();
        s.reset();
        s.solve(&capped(3.0)).unwrap();
        assert_eq!(s.stats().warm_starts, 0);
    }
}
