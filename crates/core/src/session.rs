//! Warm-started solve sessions with algorithm selection for parameter
//! sweeps.
//!
//! The evaluation workload (Tables 4–6, Figures 3–4) re-solves the same
//! privacy polytope across an `(ε, δ)`/budget grid: the constraint
//! matrix is fixed and only the right-hand side (budget, output size)
//! moves between adjacent grid points. A [`SolveSession`] owns the LP
//! options plus the [`Basis`] snapshot of the previous optimum and
//! picks the cheapest sound path per solve:
//!
//! * **dual reoptimization** when the step moved only `b`/`l`/`u` —
//!   either declared by the caller ([`SolveSession::solve_rhs_step`])
//!   or detected by fingerprinting the previous problem's matrix,
//!   objective, and sense ([`SolveSession::solve`]) — restoring the
//!   previous basis (still dual feasible) and repairing primal
//!   feasibility in a handful of dual pivots;
//! * **warm primal** when the shape matches but the step was not
//!   rhs-only (or the dual attempt bowed out);
//! * **cold two-phase primal** otherwise.
//!
//! Selection never changes *what* is computed, only how fast: every
//! fast path verifies its own premise on the new data and silently
//! degrades. [`SessionStats`] counts which paths actually ran so
//! sweeps can prove their speedup instead of assuming it.

use dpsan_lp::error::LpError;
use dpsan_lp::problem::{Problem, Sense};
use dpsan_lp::simplex::{
    solve_parametric, solve_parametric_cached, Algorithm, Basis, ReoptCache, SimplexOptions,
    Solution, SolveStatus, StepHint,
};

/// Counters describing how a session's solves went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Total solves issued through the session.
    pub solves: usize,
    /// Solves seeded from the previous optimal basis (dual
    /// reoptimizations plus warm primal starts).
    pub warm_starts: usize,
    /// Solves finished by the dual simplex from the restored basis.
    pub dual_reopts: usize,
    /// Solves that ran the full two-phase primal from scratch.
    pub cold_starts: usize,
    /// Dual reoptimizations that were attempted but fell back to the
    /// primal path (lost dual feasibility, stall, unusable snapshot).
    pub dual_fallbacks: usize,
    /// Warm results discarded because the optimum was not unique
    /// (alternate optimal vertices): the session re-solved cold so the
    /// answer never depends on solver history. Counted on top of the
    /// cold start the re-solve performs.
    pub degenerate_fallbacks: usize,
    /// Simplex iterations summed over all solves (all algorithms,
    /// including failed dual attempts).
    pub iterations: usize,
    /// Basis (re)factorizations summed over all solves.
    pub refactorizations: usize,
}

impl SessionStats {
    /// Accumulate another stats block into this one (used to aggregate
    /// per-shard sessions into experiment-wide totals).
    pub fn merge(&mut self, other: &SessionStats) {
        self.solves += other.solves;
        self.warm_starts += other.warm_starts;
        self.dual_reopts += other.dual_reopts;
        self.cold_starts += other.cold_starts;
        self.dual_fallbacks += other.dual_fallbacks;
        self.degenerate_fallbacks += other.degenerate_fallbacks;
        self.iterations += other.iterations;
        self.refactorizations += other.refactorizations;
    }

    /// Warm primal starts (seeded solves that did not finish dual).
    pub fn warm_primal(&self) -> usize {
        self.warm_starts - self.dual_reopts
    }

    /// The counter increments since `before` (a snapshot of the same
    /// monotone session). Used to attribute per-release solver work
    /// when a session spans several releases.
    pub fn delta(&self, before: &SessionStats) -> SessionStats {
        SessionStats {
            solves: self.solves - before.solves,
            warm_starts: self.warm_starts - before.warm_starts,
            dual_reopts: self.dual_reopts - before.dual_reopts,
            cold_starts: self.cold_starts - before.cold_starts,
            dual_fallbacks: self.dual_fallbacks - before.dual_fallbacks,
            degenerate_fallbacks: self.degenerate_fallbacks - before.degenerate_fallbacks,
            iterations: self.iterations - before.iterations,
            refactorizations: self.refactorizations - before.refactorizations,
        }
    }
}

/// Which solve paths a session may pick from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Full selection: dual reoptimization on rhs-only steps, warm or
    /// cold primal otherwise.
    #[default]
    Auto,
    /// Never attempt the dual path — the pre-dual behaviour (warm
    /// primal when the snapshot fits, cold otherwise). Useful for
    /// benchmarking the dual path against its predecessor.
    PrimalOnly,
}

/// Fingerprint of the parts of a [`Problem`] that must be unchanged for
/// a step to qualify as rhs/bounds-only: sense, shape, objective, and
/// matrix, the latter two condensed to an FNV-1a hash so per-solve
/// bookkeeping allocates nothing.
///
/// This fingerprint is *advisory routing only* — it decides whether to
/// try the dual path, and the LP layer's carried cache re-verifies the
/// matrix and objective exactly before reusing anything (see
/// `ReoptCache` in `dpsan_lp::simplex`). A hash collision can therefore
/// at worst cost one rejected dual attempt, never a wrong answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShapePrint {
    sense: Sense,
    n_rows: usize,
    n_cols: usize,
    hash: u64,
}

/// FNV-1a over the objective and matrix triplets (bit patterns, so the
/// comparison is exact-equality-shaped, like the LP layer's check).
fn shape_hash(p: &Problem) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mix = |v: u64, h: &mut u64| {
        *h ^= v;
        *h = h.wrapping_mul(PRIME);
    };
    for &c in p.objective() {
        mix(c.to_bits(), &mut h);
    }
    for &(r, c, v) in p.triplets() {
        mix(r as u64, &mut h);
        mix(c as u64, &mut h);
        mix(v.to_bits(), &mut h);
    }
    h
}

impl ShapePrint {
    fn of(p: &Problem) -> ShapePrint {
        ShapePrint { sense: p.sense(), n_rows: p.n_rows(), n_cols: p.n_cols(), hash: shape_hash(p) }
    }
}

/// A solver session that carries the optimal basis (and thereby the
/// factorization work) from one solve to the next.
///
/// Use one session per *sweep of related problems* (e.g. one shard of a
/// budget grid). Interleaving unrelated problem shapes through a single
/// session is safe but defeats the warm start, since each shape change
/// discards the snapshot.
#[derive(Debug)]
pub struct SolveSession {
    lp: SimplexOptions,
    strategy: Strategy,
    basis: Option<Basis>,
    prev: Option<ShapePrint>,
    /// Carried scale factors + standard form + LU factorization for the
    /// dual fast path (self-validating; see [`ReoptCache`]).
    cache: ReoptCache,
    stats: SessionStats,
}

impl Clone for SolveSession {
    /// Clones carry the options, snapshot, and stats — but not the
    /// factorization cache (it is rebuilt lazily by the clone's first
    /// solve), so cloning stays cheap and sessions stay `Clone` even
    /// though a live LU factorization is not.
    fn clone(&self) -> SolveSession {
        SolveSession {
            lp: self.lp.clone(),
            strategy: self.strategy,
            basis: self.basis.clone(),
            prev: self.prev,
            cache: ReoptCache::new(),
            stats: self.stats,
        }
    }
}

impl SolveSession {
    /// New session with the given LP options and no snapshot.
    pub fn new(lp: SimplexOptions) -> SolveSession {
        SolveSession {
            lp,
            strategy: Strategy::default(),
            basis: None,
            prev: None,
            cache: ReoptCache::new(),
            stats: SessionStats::default(),
        }
    }

    /// Restrict the session to the given solve paths.
    pub fn with_strategy(mut self, strategy: Strategy) -> SolveSession {
        self.strategy = strategy;
        self
    }

    /// The LP options every solve of this session uses.
    pub fn lp_options(&self) -> &SimplexOptions {
        &self.lp
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Drop the stored snapshot, fingerprint, and factorization cache
    /// (the next solve starts cold).
    pub fn reset(&mut self) {
        self.basis = None;
        self.prev = None;
        self.cache.clear();
    }

    /// Solve `problem`, auto-selecting the algorithm: when the problem
    /// matches the previous one in matrix, objective, and sense (only
    /// `b`/`l`/`u` moved), the previous basis is restored and the dual
    /// simplex reoptimizes; otherwise the warm/cold primal path runs.
    pub fn solve(&mut self, problem: &Problem) -> Result<Solution, LpError> {
        // one fingerprint computation serves both the comparison with
        // the previous solve and the stored print for the next one
        let fp = (self.strategy == Strategy::Auto).then(|| ShapePrint::of(problem));
        let rhs_only = self.basis.is_some() && fp.is_some() && fp == self.prev;
        let hint = if rhs_only { StepHint::RhsOnly } else { StepHint::Fresh };
        self.solve_with_hint(problem, hint, fp)
    }

    /// Solve `problem` declaring that, relative to the previous solve,
    /// only the right-hand side and/or variable bounds moved (a grid
    /// step). This skips the fingerprint work of [`SolveSession::solve`]
    /// entirely (neither comparing nor storing one — an interleaved
    /// `solve` call right after a declared step conservatively runs the
    /// primal path once) and goes straight to the dual reoptimization
    /// attempt. The declaration is advisory: the dual path re-verifies
    /// dual feasibility on the actual new data and falls back to the
    /// primal path when the claim does not hold, so a wrong declaration
    /// costs time, never correctness.
    pub fn solve_rhs_step(&mut self, problem: &Problem) -> Result<Solution, LpError> {
        let hint = match self.strategy {
            Strategy::Auto if self.basis.is_some() => StepHint::RhsOnly,
            _ => StepHint::Fresh,
        };
        self.solve_with_hint(problem, hint, None)
    }

    fn solve_with_hint(
        &mut self,
        problem: &Problem,
        hint: StepHint,
        fp: Option<ShapePrint>,
    ) -> Result<Solution, LpError> {
        // a PrimalOnly session can never consult the carried cache
        // (every hint is Fresh), so it uses the stateless entry point
        // and skips cache population entirely — keeping the pinned
        // PR 2 baseline behaviour honest in benches
        let mut out = match self.strategy {
            Strategy::Auto => solve_parametric_cached(
                problem,
                &self.lp,
                self.basis.as_ref(),
                hint,
                &mut self.cache,
            )?,
            Strategy::PrimalOnly => {
                solve_parametric(problem, &self.lp, self.basis.as_ref(), StepHint::Fresh)?
            }
        };
        // Determinism guard: a warm-seeded solve that lands on a
        // non-unique optimum may sit at a *different* optimal vertex
        // than the cold solve of the same problem would pick — under a
        // retraction step (shrunken caps) the dual repair routinely
        // does. Downstream, different vertices floor to different
        // counts and break the "same window + same seed ⇒ identical
        // release, independent of solver history" guarantee, so the
        // warm answer is discarded and the canonical cold path re-runs.
        // Cold solves are deterministic, so cold-vs-cold needs no guard.
        let mut degenerate_retry = false;
        if out.solution.status == SolveStatus::Optimal
            && out.stats.algorithm != Algorithm::ColdPrimal
            && out.solution.alternate_optima
        {
            degenerate_retry = true;
            let spent_iterations = out.stats.iterations;
            let spent_refactorizations = out.stats.refactorizations;
            // the canonical answer is kept unconditionally, and the
            // vetoed solve already certified this LP's optimum as
            // non-unique — skip paying for the certificate again (on
            // massively degenerate LPs it rivals the solve itself) and
            // carry the established flag forward
            let lp = SimplexOptions { skip_optima_certificate: true, ..self.lp.clone() };
            out = solve_parametric_cached(problem, &lp, None, StepHint::Fresh, &mut self.cache)?;
            out.solution.alternate_optima = true;
            out.stats.iterations += spent_iterations;
            out.stats.refactorizations += spent_refactorizations;
        }
        // every increment mirrors into the process-wide registry so the
        // exported series and this session's stats agree by construction
        self.stats.solves += 1;
        if degenerate_retry {
            self.stats.degenerate_fallbacks += 1;
            crate::obs::degenerate_fallbacks_total().inc();
        }
        // the path label carries the kernel route too: `_sparse` when
        // the LP layer ran on its sparse kernels (large instances)
        let sparse = out.stats.sparse;
        match out.stats.algorithm {
            Algorithm::DualReopt => {
                self.stats.dual_reopts += 1;
                self.stats.warm_starts += 1;
                crate::obs::solves_total(if sparse { "dual_reopt_sparse" } else { "dual_reopt" })
                    .inc();
            }
            Algorithm::WarmPrimal => {
                self.stats.warm_starts += 1;
                crate::obs::solves_total(if sparse { "warm_primal_sparse" } else { "warm_primal" })
                    .inc();
            }
            Algorithm::ColdPrimal => {
                self.stats.cold_starts += 1;
                crate::obs::solves_total(if sparse { "cold_primal_sparse" } else { "cold_primal" })
                    .inc();
            }
        }
        if out.stats.dual_fallback {
            self.stats.dual_fallbacks += 1;
            crate::obs::dual_fallbacks_total().inc();
        }
        self.stats.iterations += out.stats.iterations;
        self.stats.refactorizations += out.stats.refactorizations;
        crate::obs::iterations_total().add(out.stats.iterations as u64);
        crate::obs::refactorizations_total().add(out.stats.refactorizations as u64);
        self.basis = if out.solution.status == SolveStatus::Optimal { out.basis } else { None };
        self.prev = fp;
        Ok(out.solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsan_lp::problem::{RowBounds, Sense, VarBounds};

    /// `max x0 + 0.8·x1` s.t. `x0 + x1 ≤ rhs`, `x ∈ [0, 10]`. The
    /// distinct objective coefficients make the optimum unique (all
    /// budget goes to `x0` for `rhs ≤ 10`), so warm paths are never
    /// vetoed by the alternate-optima guard.
    fn capped(rhs: f64) -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_col(1.0, VarBounds { lower: 0.0, upper: 10.0 }).unwrap();
        let b = p.add_col(0.8, VarBounds { lower: 0.0, upper: 10.0 }).unwrap();
        p.add_row(RowBounds::at_most(rhs), &[(a, 1.0), (b, 1.0)]).unwrap();
        p
    }

    #[test]
    fn sweep_warm_starts_after_first_solve() {
        let mut s = SolveSession::new(SimplexOptions::default());
        for (i, rhs) in [2.0, 3.0, 5.0, 8.0].into_iter().enumerate() {
            let sol = s.solve(&capped(rhs)).unwrap();
            assert_eq!(sol.status, SolveStatus::Optimal);
            assert!((sol.objective - rhs).abs() < 1e-9);
            let st = s.stats();
            assert_eq!(st.solves, i + 1);
        }
        assert!(s.stats().warm_starts >= 3, "rhs-only sweeps reuse the basis: {:?}", s.stats());
    }

    #[test]
    fn auto_detection_routes_rhs_sweeps_through_dual() {
        let mut s = SolveSession::new(SimplexOptions::default());
        // down-sweep: the old vertex leaves the shrinking polytope every
        // step, which the warm primal path can only fix by cold
        // starting — the dual path repairs it in place
        for rhs in [9.0, 7.0, 5.0, 3.0, 1.0] {
            let sol = s.solve(&capped(rhs)).unwrap();
            assert_eq!(sol.status, SolveStatus::Optimal);
            assert!((sol.objective - rhs).abs() < 1e-9);
        }
        let st = s.stats();
        assert_eq!(st.dual_reopts, 4, "every step after the first goes dual: {st:?}");
        assert_eq!(st.cold_starts, 1, "only the first solve is cold: {st:?}");
        assert_eq!(st.dual_fallbacks, 0, "{st:?}");
    }

    #[test]
    fn declared_rhs_step_goes_dual_without_fingerprint() {
        let mut s = SolveSession::new(SimplexOptions::default());
        s.solve_rhs_step(&capped(4.0)).unwrap();
        s.solve_rhs_step(&capped(2.0)).unwrap();
        let st = s.stats();
        assert_eq!(st.dual_reopts, 1, "{st:?}");
    }

    #[test]
    fn primal_only_strategy_never_runs_dual() {
        let mut s =
            SolveSession::new(SimplexOptions::default()).with_strategy(Strategy::PrimalOnly);
        for rhs in [9.0, 7.0, 5.0] {
            s.solve(&capped(rhs)).unwrap();
        }
        let st = s.stats();
        assert_eq!(st.dual_reopts, 0, "{st:?}");
        assert_eq!(st.dual_fallbacks, 0, "{st:?}");
        assert_eq!(st.solves, 3);
    }

    #[test]
    fn objective_change_is_not_treated_as_rhs_step() {
        let mut s = SolveSession::new(SimplexOptions::default());
        s.solve(&capped(4.0)).unwrap();
        // same shape, different objective: fingerprint must refuse the
        // dual route (the warm primal path still applies)
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_col(3.0, VarBounds { lower: 0.0, upper: 10.0 }).unwrap();
        let b = p.add_col(1.0, VarBounds { lower: 0.0, upper: 10.0 }).unwrap();
        p.add_row(RowBounds::at_most(4.0), &[(a, 1.0), (b, 1.0)]).unwrap();
        let sol = s.solve(&p).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 12.0).abs() < 1e-9);
        let st = s.stats();
        assert_eq!(st.dual_reopts, 0, "{st:?}");
        assert_eq!(st.dual_fallbacks, 0, "no wasted dual attempt either: {st:?}");
    }

    #[test]
    fn shape_change_degrades_to_cold() {
        let mut s = SolveSession::new(SimplexOptions::default());
        s.solve(&capped(2.0)).unwrap();
        // different shape: two rows
        let mut p = capped(4.0);
        p.add_row(RowBounds::at_most(3.0), &[(0, 1.0)]).unwrap();
        let sol = s.solve(&p).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_eq!(s.stats().warm_starts, 0, "mismatched shape cannot warm-start");
        // and the session recovers: next same-shape solve warms again
        s.solve(&{
            let mut q = capped(5.0);
            q.add_row(RowBounds::at_most(4.0), &[(0, 1.0)]).unwrap();
            q
        })
        .unwrap();
        assert_eq!(s.stats().warm_starts, 1);
    }

    #[test]
    fn reset_forces_cold() {
        let mut s = SolveSession::new(SimplexOptions::default());
        s.solve(&capped(2.0)).unwrap();
        s.reset();
        s.solve(&capped(3.0)).unwrap();
        assert_eq!(s.stats().warm_starts, 0);
        assert_eq!(s.stats().cold_starts, 2);
    }

    #[test]
    fn stats_merge_adds_fieldwise() {
        let mut a = SessionStats {
            solves: 1,
            warm_starts: 1,
            dual_reopts: 1,
            cold_starts: 0,
            dual_fallbacks: 0,
            degenerate_fallbacks: 0,
            iterations: 5,
            refactorizations: 2,
        };
        let b = SessionStats {
            solves: 2,
            warm_starts: 0,
            dual_reopts: 0,
            cold_starts: 2,
            dual_fallbacks: 1,
            degenerate_fallbacks: 1,
            iterations: 11,
            refactorizations: 3,
        };
        a.merge(&b);
        assert_eq!(a.solves, 3);
        assert_eq!(a.iterations, 16);
        assert_eq!(a.refactorizations, 5);
        assert_eq!(a.dual_fallbacks, 1);
        assert_eq!(a.degenerate_fallbacks, 1);
        assert_eq!(a.warm_primal(), 0);
    }

    #[test]
    fn degenerate_optimum_discards_the_warm_answer() {
        // `max x0 + x1` over one shared row: the optimal face is the
        // whole segment x0 + x1 = rhs, so a dual reopt may sit at a
        // different corner than a cold solve — the guard must re-solve
        // cold so the session's answer never depends on history
        let flat = |rhs: f64| {
            let mut p = Problem::new(Sense::Maximize);
            let a = p.add_col(1.0, VarBounds { lower: 0.0, upper: 10.0 }).unwrap();
            let b = p.add_col(1.0, VarBounds { lower: 0.0, upper: 10.0 }).unwrap();
            p.add_row(RowBounds::at_most(rhs), &[(a, 1.0), (b, 1.0)]).unwrap();
            p
        };
        let mut s = SolveSession::new(SimplexOptions::default());
        for rhs in [9.0, 7.0, 5.0, 3.0] {
            let warm_sol = s.solve(&flat(rhs)).unwrap();
            let cold_sol = SolveSession::new(SimplexOptions::default()).solve(&flat(rhs)).unwrap();
            assert_eq!(warm_sol.status, SolveStatus::Optimal);
            assert_eq!(warm_sol.x, cold_sol.x, "rhs={rhs}: history leaked into the vertex");
        }
        let st = s.stats();
        assert!(st.degenerate_fallbacks >= 3, "every warm attempt must be vetoed: {st:?}");
        assert_eq!(st.dual_reopts, 0, "no degenerate dual answer may be kept: {st:?}");
    }
}
