//! Error type for the sanitization pipeline.

use std::fmt;

/// Errors surfaced by the core sanitization layer.
#[derive(Debug)]
pub enum CoreError {
    /// The input log still contains a pair entirely held by one user
    /// (Condition 1 of Theorem 1 requires preprocessing first).
    NotPreprocessed {
        /// Index of an offending pair.
        pair: usize,
    },
    /// The requested output size is not achievable under the privacy
    /// constraints (must be in `(0, λ]`).
    OutputSizeInfeasible {
        /// The requested size.
        requested: u64,
    },
    /// The LP/MIP solver failed or hit a limit.
    Solver(dpsan_lp::LpError),
    /// The solver returned a non-optimal status for a problem that must
    /// be solvable (the privacy polytope is always feasible and bounded).
    UnexpectedStatus(&'static str),
    /// A computed solution violated the privacy constraints beyond
    /// tolerance (indicates a numerical problem; never released).
    ConstraintViolation {
        /// The worst violation found.
        violation: f64,
    },
    /// A release was refused because it would exceed the caller
    /// ledger's lifetime `(ε, δ)` budget. Nothing was charged and no
    /// output was produced.
    Budget(dpsan_dp::BudgetError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotPreprocessed { pair } => write!(
                f,
                "pair {pair} is held entirely by one user; run preprocessing (Condition 1) first"
            ),
            CoreError::OutputSizeInfeasible { requested } => {
                write!(f, "output size {requested} exceeds the privacy-feasible maximum λ")
            }
            CoreError::Solver(e) => write!(f, "solver failure: {e}"),
            CoreError::UnexpectedStatus(s) => write!(f, "unexpected solver status: {s}"),
            CoreError::ConstraintViolation { violation } => {
                write!(f, "solution violates privacy constraints by {violation}")
            }
            CoreError::Budget(e) => write!(f, "release refused: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Solver(e) => Some(e),
            CoreError::Budget(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dpsan_lp::LpError> for CoreError {
    fn from(e: dpsan_lp::LpError) -> Self {
        CoreError::Solver(e)
    }
}

impl From<dpsan_dp::BudgetError> for CoreError {
    fn from(e: dpsan_dp::BudgetError) -> Self {
        CoreError::Budget(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoreError::NotPreprocessed { pair: 3 }.to_string().contains("pair 3"));
        assert!(CoreError::OutputSizeInfeasible { requested: 99 }.to_string().contains("99"));
        assert!(CoreError::ConstraintViolation { violation: 0.5 }.to_string().contains("0.5"));
        assert!(CoreError::UnexpectedStatus("unbounded").to_string().contains("unbounded"));
    }

    #[test]
    fn solver_error_wraps() {
        use std::error::Error;
        let e = CoreError::from(dpsan_lp::LpError::SingularBasis);
        assert!(e.source().is_some());
    }
}
