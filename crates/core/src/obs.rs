//! Solver telemetry handles.
//!
//! | series | type | meaning |
//! |---|---|---|
//! | `dpsan_solves_total{path=...}` | counter | solves by path actually taken: `dual_reopt`, `warm_primal`, `cold_primal`, plus `_sparse`-suffixed variants when the LP layer routed the solve onto its sparse kernels |
//! | `dpsan_solve_iterations_total` | counter | simplex iterations (all algorithms, including failed dual attempts) |
//! | `dpsan_solve_refactorizations_total` | counter | basis (re)factorizations |
//! | `dpsan_solve_dual_fallbacks_total` | counter | dual reoptimizations that bowed out to the primal path |
//! | `dpsan_solve_degenerate_fallbacks_total` | counter | warm answers vetoed by the alternate-optima guard (re-solved cold) |
//!
//! These mirror [`crate::SessionStats`] one-for-one: every increment in
//! `SolveSession::solve_with_hint` lands in both the per-session struct
//! and the process-wide registry, so a stats line rendered from either
//! source agrees with the other by construction. `warm_starts` needs no
//! series of its own — it is `dual_reopt + warm_primal` by definition,
//! which label arithmetic recovers.

use dpsan_obs::{global, Counter};
use std::sync::OnceLock;

/// Solves that finished on the given path (`dual_reopt`, `warm_primal`,
/// `cold_primal`, or their `_sparse`-suffixed variants). Handles are
/// cached per path so the hot solve loop never touches the registry
/// lock.
pub fn solves_total(path: &str) -> Counter {
    static DUAL: OnceLock<Counter> = OnceLock::new();
    static WARM: OnceLock<Counter> = OnceLock::new();
    static COLD: OnceLock<Counter> = OnceLock::new();
    static DUAL_SP: OnceLock<Counter> = OnceLock::new();
    static WARM_SP: OnceLock<Counter> = OnceLock::new();
    static COLD_SP: OnceLock<Counter> = OnceLock::new();
    let cache = match path {
        "dual_reopt" => &DUAL,
        "warm_primal" => &WARM,
        "cold_primal" => &COLD,
        "dual_reopt_sparse" => &DUAL_SP,
        "warm_primal_sparse" => &WARM_SP,
        "cold_primal_sparse" => &COLD_SP,
        other => return global().counter_with("dpsan_solves_total", "path", other),
    };
    cache.get_or_init(|| global().counter_with("dpsan_solves_total", "path", path)).clone()
}

/// Simplex iterations summed over all solves.
pub fn iterations_total() -> &'static Counter {
    static H: OnceLock<Counter> = OnceLock::new();
    H.get_or_init(|| global().counter("dpsan_solve_iterations_total"))
}

/// Basis (re)factorizations summed over all solves.
pub fn refactorizations_total() -> &'static Counter {
    static H: OnceLock<Counter> = OnceLock::new();
    H.get_or_init(|| global().counter("dpsan_solve_refactorizations_total"))
}

/// Dual reoptimizations that fell back to the primal path.
pub fn dual_fallbacks_total() -> &'static Counter {
    static H: OnceLock<Counter> = OnceLock::new();
    H.get_or_init(|| global().counter("dpsan_solve_dual_fallbacks_total"))
}

/// Warm answers discarded by the alternate-optima guard.
pub fn degenerate_fallbacks_total() -> &'static Counter {
    static H: OnceLock<Counter> = OnceLock::new();
    H.get_or_init(|| global().counter("dpsan_solve_degenerate_fallbacks_total"))
}
