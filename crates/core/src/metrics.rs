//! Utility metrics of the evaluation (Section 6).
//!
//! * precision / recall of frequent pairs (Eq. 9),
//! * sum and average of frequent-pair support distances (Eq. 5),
//! * retained pair diversity (Fig. 4 / Table 7),
//! * the `DiffRatio` triplet histogram (Eq. 10 / Fig. 6).

use dpsan_searchlog::{PairId, SearchLog};

/// Precision/recall of the frequent pairs between input and output
/// (Eq. 9), at a shared minimum support `s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// `|S0 ∩ S| / |S|` (1.0 when the output has no frequent pairs).
    pub precision: f64,
    /// `|S0 ∩ S| / |S0|` (1.0 when the input has no frequent pairs).
    pub recall: f64,
    /// Number of frequent pairs in the input (`|S0|`).
    pub input_frequent: usize,
    /// Number of frequent pairs in the output (`|S|`).
    pub output_frequent: usize,
}

/// Compute Eq. 9 for output counts expressed in the input's pair space.
/// The output size `|O|` is the realized `Σ x_ij`.
pub fn precision_recall(
    input: &SearchLog,
    output_counts: &[u64],
    min_support: f64,
) -> PrecisionRecall {
    let f: Vec<f64> = output_counts.iter().map(|&c| c as f64).collect();
    precision_recall_f(input, &f, min_support)
}

/// [`precision_recall`] over fractional (LP-optimal) counts. Utility
/// measurement at small scales uses the pre-floor counts because
/// flooring quantizes tiny per-pair optima to zero (negligible at the
/// paper's scale, dominant at toy scales); see EXPERIMENTS.md.
pub fn precision_recall_f(
    input: &SearchLog,
    output_counts: &[f64],
    min_support: f64,
) -> PrecisionRecall {
    assert_eq!(output_counts.len(), input.n_pairs(), "counts must cover every input pair");
    let size_d = input.size() as f64;
    let size_o: f64 = output_counts.iter().sum();

    let mut s0 = 0usize;
    let mut s = 0usize;
    let mut both = 0usize;
    for (pi, &x) in output_counts.iter().enumerate() {
        let c = input.pair_total(PairId::from_index(pi));
        let in_freq = size_d > 0.0 && c as f64 / size_d >= min_support;
        let out_freq = size_o > 0.0 && x / size_o >= min_support;
        s0 += usize::from(in_freq);
        s += usize::from(out_freq);
        both += usize::from(in_freq && out_freq);
    }
    PrecisionRecall {
        precision: if s == 0 { 1.0 } else { both as f64 / s as f64 },
        recall: if s0 == 0 { 1.0 } else { both as f64 / s0 as f64 },
        input_frequent: s0,
        output_frequent: s,
    }
}

/// Sum of support distances over the input-frequent pairs (Eq. 5),
/// evaluated with an explicit output size (the paper's specified `|O|`,
/// or the realized total — caller's choice).
pub fn support_distance_sum(
    input: &SearchLog,
    output_counts: &[u64],
    min_support: f64,
    output_size: u64,
) -> f64 {
    let f: Vec<f64> = output_counts.iter().map(|&c| c as f64).collect();
    support_distance_sum_f(input, &f, min_support, output_size as f64)
}

/// [`support_distance_sum`] over fractional (LP-optimal) counts.
pub fn support_distance_sum_f(
    input: &SearchLog,
    output_counts: &[f64],
    min_support: f64,
    output_size: f64,
) -> f64 {
    assert_eq!(output_counts.len(), input.n_pairs(), "counts must cover every input pair");
    let size_d = input.size() as f64;
    if size_d == 0.0 || output_size <= 0.0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for (pi, &x) in output_counts.iter().enumerate() {
        let c = input.pair_total(PairId::from_index(pi)) as f64;
        if c / size_d >= min_support {
            sum += (x / output_size - c / size_d).abs();
        }
    }
    sum
}

/// Average support distance over the input-frequent pairs (Fig. 3(c)
/// uses this when the frequent set varies with `s`). Returns 0 when no
/// pair is frequent.
pub fn support_distance_avg(
    input: &SearchLog,
    output_counts: &[u64],
    min_support: f64,
    output_size: u64,
) -> f64 {
    let f: Vec<f64> = output_counts.iter().map(|&c| c as f64).collect();
    support_distance_avg_f(input, &f, min_support, output_size as f64)
}

/// [`support_distance_avg`] over fractional (LP-optimal) counts.
pub fn support_distance_avg_f(
    input: &SearchLog,
    output_counts: &[f64],
    min_support: f64,
    output_size: f64,
) -> f64 {
    let size_d = input.size() as f64;
    if size_d == 0.0 {
        return 0.0;
    }
    let n_frequent = (0..input.n_pairs())
        .filter(|&pi| input.pair_total(PairId::from_index(pi)) as f64 / size_d >= min_support)
        .count();
    if n_frequent == 0 {
        return 0.0;
    }
    support_distance_sum_f(input, output_counts, min_support, output_size) / n_frequent as f64
}

/// Fraction of distinct pairs retained (`Σ 1{x_ij > 0} / n_pairs`),
/// the diversity measure of Fig. 4 / Table 7.
pub fn diversity_retained(output_counts: &[u64]) -> f64 {
    if output_counts.is_empty() {
        return 0.0;
    }
    output_counts.iter().filter(|&&c| c > 0).count() as f64 / output_counts.len() as f64
}

/// The `DiffRatio` histogram of Eq. 10 / Fig. 6.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRatioHistogram {
    /// Bin width in ratio units (Fig. 6 uses 0.10 = 10 %).
    pub bin_width: f64,
    /// `bins[b]` counts triplets with `DiffRatio ∈ [b·w, (b+1)·w)`;
    /// the final element is the overflow bin (`≥ bins.len()·w`... i.e.
    /// every ratio above the covered range, including > 100 %).
    pub bins: Vec<u64>,
    /// Number of triplets measured.
    pub total: u64,
}

impl DiffRatioHistogram {
    /// Fraction of measured triplets with `DiffRatio` below `threshold`.
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let full_bins = (threshold / self.bin_width).floor() as usize;
        let covered: u64 = self.bins.iter().take(full_bins.min(self.bins.len())).sum();
        covered as f64 / self.total as f64
    }

    /// Merge counts of another histogram (same shape) into this one —
    /// used to average over repeated sampled outputs.
    pub fn merge(&mut self, other: &DiffRatioHistogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "histogram shapes differ");
        assert_eq!(self.bin_width, other.bin_width, "histogram widths differ");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// Compute Eq. 10 for one sampled output: for every input triplet
/// `(q_i, u_j, s_k)` with `c_ijk > 0`,
/// `DiffRatio = |(x_ijk/|O| − c_ijk/|D|) / (c_ijk/|D|)|`,
/// binned at `bin_width` into `n_bins` regular bins plus one overflow
/// bin. `|O|` is the realized output size.
pub fn diff_ratio_histogram(
    input: &SearchLog,
    output: &SearchLog,
    bin_width: f64,
    n_bins: usize,
) -> DiffRatioHistogram {
    assert!(bin_width > 0.0 && n_bins > 0, "need positive bins");
    let size_d = input.size() as f64;
    let size_o = output.size() as f64;
    let mut bins = vec![0u64; n_bins + 1];
    let mut total = 0u64;
    for pi in 0..input.n_pairs() {
        let p = PairId::from_index(pi);
        let (q, u) = input.pair_key(p);
        let out_pair = output.pair_id(q, u);
        for t in input.holders(p) {
            let c_share = t.count as f64 / size_d;
            let x_ijk = out_pair.map_or(0, |op| output.triplet_count(op, t.user));
            let x_share = if size_o > 0.0 { x_ijk as f64 / size_o } else { 0.0 };
            let ratio = ((x_share - c_share) / c_share).abs();
            let bin = ((ratio / bin_width).floor() as usize).min(n_bins);
            bins[bin] += 1;
            total += 1;
        }
    }
    DiffRatioHistogram { bin_width, bins, total }
}

/// The shared cross-mechanism utility score of `repro compare`: every
/// [`Sanitizer`](crate::mechanism::Sanitizer) impl is measured on the
/// same released-counts frame (the preprocessed input's pair space),
/// so LP sampling, noisy thresholds, and local randomizers become
/// directly comparable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MechanismScore {
    /// Frequent-pair precision at the shared support threshold.
    pub precision: f64,
    /// Frequent-pair recall at the shared support threshold.
    pub recall: f64,
    /// Released volume `Σ x_ij / |D|` (may exceed 1 for mechanisms
    /// whose released counts are noisy rather than subsampled).
    pub retained_volume: f64,
    /// Query-frequency KL divergence (input ‖ release); see
    /// [`query_frequency_kl`].
    pub query_kl: f64,
}

/// Score released counts on the shared utility metrics at a minimum
/// support `s`. `counts` must be in the pair space of `reference`
/// (i.e. [`Release::counts`](crate::mechanism::Release::counts)
/// against [`Release::reference`](crate::mechanism::Release::reference)).
pub fn mechanism_score(reference: &SearchLog, counts: &[u64], min_support: f64) -> MechanismScore {
    let pr = precision_recall(reference, counts, min_support);
    let retained_volume = if reference.size() == 0 {
        0.0
    } else {
        counts.iter().sum::<u64>() as f64 / reference.size() as f64
    };
    MechanismScore {
        precision: pr.precision,
        recall: pr.recall,
        retained_volume,
        query_kl: query_frequency_kl(reference, counts),
    }
}

/// Distributional fidelity of a release: KL divergence
/// `KL(P ‖ Q)` between the input's query-frequency distribution `P`
/// and the release's `Q`, both obtained by marginalizing pair counts
/// over queries. The released side is add-α smoothed (α = ½ per query
/// active in the input) so queries a mechanism suppressed entirely
/// contribute a large-but-finite penalty. Zero iff the release
/// reproduces the input's query mix exactly.
pub fn query_frequency_kl(reference: &SearchLog, counts: &[u64]) -> f64 {
    assert_eq!(counts.len(), reference.n_pairs(), "counts must cover the reference pair space");
    let nq = reference.queries().len();
    let mut p = vec![0.0f64; nq];
    let mut q = vec![0.0f64; nq];
    for pe in reference.pairs() {
        let (qid, _) = reference.pair_key(pe.pair);
        p[qid.index()] += pe.total as f64;
        q[qid.index()] += counts[pe.pair.index()] as f64;
    }
    let p_sum: f64 = p.iter().sum();
    if p_sum == 0.0 {
        return 0.0;
    }
    const ALPHA: f64 = 0.5;
    let active = p.iter().filter(|&&v| v > 0.0).count() as f64;
    let q_sum: f64 = q.iter().sum::<f64>() + ALPHA * active;
    let mut kl = 0.0;
    for i in 0..nq {
        if p[i] > 0.0 {
            let pi = p[i] / p_sum;
            let qi = (q[i] + ALPHA) / q_sum;
            kl += pi * (pi / qi).ln();
        }
    }
    kl.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsan_searchlog::{preprocess, SearchLogBuilder};

    fn input_log() -> SearchLog {
        let mut b = SearchLogBuilder::new();
        // pair counts: 40, 30, 20, 10 -> size 100
        let spec: [(&str, &[(&str, u64)]); 4] = [
            ("a", &[("u1", 25), ("u2", 15)]),
            ("b", &[("u1", 15), ("u3", 15)]),
            ("c", &[("u2", 10), ("u3", 10)]),
            ("d", &[("u1", 5), ("u2", 5)]),
        ];
        for (q, holders) in spec {
            for &(user, c) in holders {
                b.add(user, q, &format!("{q}.com"), c).unwrap();
            }
        }
        let (log, _) = preprocess(&b.build());
        log
    }

    #[test]
    fn perfect_output_has_perfect_metrics() {
        let log = input_log();
        let counts: Vec<u64> =
            (0..log.n_pairs()).map(|i| log.pair_total(PairId::from_index(i))).collect();
        let pr = precision_recall(&log, &counts, 0.15);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(pr.input_frequent, 3); // 40, 30, 20 of 100
        let d = support_distance_sum(&log, &counts, 0.15, counts.iter().sum());
        assert!(d.abs() < 1e-12);
        assert_eq!(diversity_retained(&counts), 1.0);
    }

    #[test]
    fn recall_drops_when_frequent_pair_lost() {
        let log = input_log();
        // kill the most frequent pair entirely
        let mut counts: Vec<u64> =
            (0..log.n_pairs()).map(|i| log.pair_total(PairId::from_index(i))).collect();
        let a = (0..log.n_pairs()).find(|&i| log.pair_total(PairId::from_index(i)) == 40).unwrap();
        counts[a] = 0;
        let pr = precision_recall(&log, &counts, 0.15);
        assert!(pr.recall < 1.0);
        assert_eq!(pr.input_frequent, 3);
    }

    #[test]
    fn precision_is_one_for_proportional_outputs() {
        // scaled-down proportional output keeps supports equal
        let log = input_log();
        let counts: Vec<u64> =
            (0..log.n_pairs()).map(|i| log.pair_total(PairId::from_index(i)) / 10).collect();
        let pr = precision_recall(&log, &counts, 0.15);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn support_distance_measures_deviation() {
        let log = input_log();
        // all-output mass on the "a" pair
        let mut counts = vec![0u64; log.n_pairs()];
        let a = (0..log.n_pairs()).find(|&i| log.pair_total(PairId::from_index(i)) == 40).unwrap();
        counts[a] = 50;
        // distances at s = 0.15: a: |1 - 0.4| = 0.6, b: 0.3, c: 0.2
        let d = support_distance_sum(&log, &counts, 0.15, 50);
        assert!((d - 1.1).abs() < 1e-12, "{d}");
        let avg = support_distance_avg(&log, &counts, 0.15, 50);
        assert!((avg - 1.1 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn diversity_counts_nonzero_pairs() {
        assert_eq!(diversity_retained(&[1, 0, 3, 0]), 0.5);
        assert_eq!(diversity_retained(&[]), 0.0);
    }

    #[test]
    fn diff_ratio_zero_for_proportional_sampling() {
        let log = input_log();
        // output = input exactly: every triplet share is preserved
        let hist = diff_ratio_histogram(&log, &log, 0.1, 10);
        assert_eq!(hist.total, 8);
        assert_eq!(hist.bins[0], 8, "all ratios are zero");
        assert_eq!(hist.fraction_below(0.4), 1.0);
    }

    #[test]
    fn diff_ratio_overflow_bin_catches_missing_triplets() {
        let log = input_log();
        let empty = SearchLogBuilder::with_vocabulary_of(&log).build();
        let hist = diff_ratio_histogram(&log, &empty, 0.1, 10);
        // x_ijk = 0 -> ratio = 1.0 -> lands at bin 10 (overflow edge)
        assert_eq!(hist.bins[10], 8);
        assert_eq!(hist.fraction_below(1.0), 0.0);
    }

    #[test]
    fn histograms_merge() {
        let log = input_log();
        let mut h1 = diff_ratio_histogram(&log, &log, 0.1, 10);
        let h2 = diff_ratio_histogram(&log, &log, 0.1, 10);
        h1.merge(&h2);
        assert_eq!(h1.total, 16);
        assert_eq!(h1.bins[0], 16);
    }

    #[test]
    fn empty_output_precision_is_one() {
        let log = input_log();
        let pr = precision_recall(&log, &vec![0; log.n_pairs()], 0.15);
        assert_eq!(pr.precision, 1.0, "no output-frequent pairs -> vacuous precision");
        assert_eq!(pr.recall, 0.0);
    }

    #[test]
    fn query_kl_is_zero_for_identity_release() {
        let log = input_log();
        let counts: Vec<u64> = log.pairs().map(|pe| pe.total).collect();
        let kl = query_frequency_kl(&log, &counts);
        assert!((0.0..0.05).contains(&kl), "identity release has near-zero KL, got {kl}");
    }

    #[test]
    fn query_kl_grows_when_queries_are_suppressed() {
        let log = input_log();
        let full: Vec<u64> = log.pairs().map(|pe| pe.total).collect();
        let mut head_only = full.clone();
        // suppress everything but the first pair's query
        for c in head_only.iter_mut().skip(1) {
            *c = 0;
        }
        assert!(
            query_frequency_kl(&log, &head_only) > query_frequency_kl(&log, &full),
            "suppressing query mass must increase the divergence"
        );
    }

    #[test]
    fn mechanism_score_bundles_shared_metrics() {
        let log = input_log();
        let counts: Vec<u64> = log.pairs().map(|pe| pe.total).collect();
        let score = mechanism_score(&log, &counts, 0.15);
        assert!((score.retained_volume - 1.0).abs() < 1e-12, "full release retains everything");
        assert_eq!(score.recall, 1.0);
        assert_eq!(score.precision, 1.0);
        let empty = mechanism_score(&log, &vec![0; log.n_pairs()], 0.15);
        assert_eq!(empty.retained_volume, 0.0);
        assert!(empty.query_kl > score.query_kl);
    }
}
