//! The differential-privacy constraints of Theorem 1 / Equation (4).
//!
//! For a preprocessed log, every user log `A_k` yields one linear
//! constraint over the output counts `x = {x_ij}`:
//!
//! ```text
//! Σ_{(i,j) ∈ A_k}  x_ij · ln t_ijk  ≤  B,    t_ijk = c_ij / (c_ij − c_ijk)
//! ```
//!
//! with the collapsed budget `B = min{ε, ln 1/(1−δ)}`. All coefficients
//! are strictly positive, so the polytope `{Mx ≤ B·1, x ≥ 0}` is always
//! feasible and bounded (Statement 1) — and the optimum of any linear
//! objective over it scales linearly in `B`.

use dpsan_dp::params::PrivacyParams;
use dpsan_lp::problem::{Problem, RowBounds};
use dpsan_searchlog::{PairId, SearchLog, UserId};

use crate::error::CoreError;

/// The constraint system `M x ≤ B·1` of one preprocessed log.
#[derive(Debug, Clone)]
pub struct PrivacyConstraints {
    /// Users with non-empty logs, one per constraint row (row order).
    users: Vec<UserId>,
    /// Sparse rows: `rows[i]` lists `(pair index, ln t_ijk)` for user i.
    rows: Vec<Vec<(usize, f64)>>,
    /// The budget `B`.
    budget: f64,
    /// Number of pair variables.
    n_pairs: usize,
    /// Input totals `c_ij` per pair (used by count caps).
    pair_totals: Vec<u64>,
}

impl PrivacyConstraints {
    /// Build the constraints for a preprocessed log.
    ///
    /// Fails with [`CoreError::NotPreprocessed`] when some pair is held
    /// entirely by one user (its `t_ijk` would be infinite).
    pub fn build(log: &SearchLog, params: PrivacyParams) -> Result<Self, CoreError> {
        let n_pairs = log.n_pairs();
        for p in 0..n_pairs {
            if log.n_holders(PairId::from_index(p)) < 2 {
                return Err(CoreError::NotPreprocessed { pair: p });
            }
        }

        let users: Vec<UserId> = log.users_with_logs().collect();
        let mut rows = Vec::with_capacity(users.len());
        for &k in &users {
            let mut row = Vec::with_capacity(log.user_log_len(k));
            for e in log.user_log(k) {
                let c_ij = log.pair_total(e.pair) as f64;
                let c_ijk = e.count as f64;
                // ln t = ln(c / (c - c_k)) > 0; finite because c_k < c
                let ln_t = (c_ij / (c_ij - c_ijk)).ln();
                debug_assert!(ln_t.is_finite() && ln_t > 0.0);
                row.push((e.pair.index(), ln_t));
            }
            rows.push(row);
        }

        let pair_totals: Vec<u64> =
            (0..n_pairs).map(|pi| log.pair_total(PairId::from_index(pi))).collect();
        Ok(PrivacyConstraints {
            users,
            rows,
            budget: params.budget().value(),
            n_pairs,
            pair_totals,
        })
    }

    /// Input totals `c_ij` per pair.
    pub fn pair_totals(&self) -> &[u64] {
        &self.pair_totals
    }

    /// Number of constraint rows (users with non-empty logs).
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of pair variables.
    pub fn n_pairs(&self) -> usize {
        self.n_pairs
    }

    /// The budget `B`.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The users owning each row, in row order.
    pub fn users(&self) -> &[UserId] {
        &self.users
    }

    /// The sparse row of one user: `(pair index, ln t_ijk)` entries.
    pub fn row(&self, i: usize) -> &[(usize, f64)] {
        &self.rows[i]
    }

    /// Largest coefficient `ln t_ijk` in the system (the "most
    /// sensitive" triplet; drives the SPE heuristic).
    pub fn max_coefficient(&self) -> Option<(usize, usize, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for (i, row) in self.rows.iter().enumerate() {
            for &(p, v) in row {
                if best.is_none_or(|(_, _, bv)| v > bv) {
                    best = Some((i, p, v));
                }
            }
        }
        best
    }

    /// Left-hand side `Σ x ln t` of every row at a point.
    pub fn row_activity(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_pairs, "dimension mismatch");
        self.rows.iter().map(|row| row.iter().map(|&(p, v)| v * x[p]).sum()).collect()
    }

    /// Worst violation `max_i (Σ x ln t − B)` at a point (≤ 0 means the
    /// point satisfies every privacy constraint).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        self.row_activity(x).into_iter().map(|a| a - self.budget).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Check a candidate count vector (integer counts are exact; the
    /// tolerance covers only `f64` summation noise).
    pub fn satisfied_by(&self, counts: &[u64], tol: f64) -> bool {
        let x: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        self.n_pairs == 0 || self.max_violation(&x) <= tol
    }

    /// Append the constraint rows to an LP over columns
    /// `cols[pair index]`.
    pub fn add_to_problem(&self, p: &mut Problem, cols: &[usize]) {
        assert_eq!(cols.len(), self.n_pairs, "need one column per pair");
        for row in &self.rows {
            let entries: Vec<(usize, f64)> = row.iter().map(|&(pi, v)| (cols[pi], v)).collect();
            p.add_row(RowBounds::at_most(self.budget), &entries)
                .expect("constraint rows are valid");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsan_searchlog::{preprocess, SearchLogBuilder};

    pub(crate) fn shared_log() -> SearchLog {
        // two shared pairs between three users (preprocessed form)
        let mut b = SearchLogBuilder::new();
        b.add("u1", "google", "google.com", 15).unwrap();
        b.add("u2", "google", "google.com", 7).unwrap();
        b.add("u3", "google", "google.com", 17).unwrap();
        b.add("u1", "book", "amazon.com", 3).unwrap();
        b.add("u3", "book", "amazon.com", 1).unwrap();
        let (log, _) = preprocess(&b.build());
        log
    }

    fn params() -> PrivacyParams {
        PrivacyParams::from_e_epsilon(2.0, 0.5)
    }

    #[test]
    fn coefficients_match_formula() {
        let log = shared_log();
        let c = PrivacyConstraints::build(&log, params()).unwrap();
        assert_eq!(c.n_rows(), 3);
        assert_eq!(c.n_pairs(), 2);
        // user u1 holds google (15 of 39) and book (3 of 4)
        let row = c.row(0);
        let google = log
            .pair_id(
                dpsan_searchlog::QueryId(log.queries().get("google").unwrap()),
                dpsan_searchlog::UrlId(log.urls().get("google.com").unwrap()),
            )
            .unwrap();
        let (_, lt_google) = row.iter().find(|&&(p, _)| p == google.index()).copied().unwrap();
        assert!((lt_google - (39.0f64 / 24.0).ln()).abs() < 1e-12);
        let (_, lt_book) = row.iter().find(|&&(p, _)| p != google.index()).copied().unwrap();
        assert!((lt_book - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn budget_is_collapsed_min() {
        let log = shared_log();
        // δ = 0.5 -> ln 2 = ε side equal; budget = ln 2
        let c = PrivacyConstraints::build(&log, params()).unwrap();
        assert!((c.budget() - 2.0f64.ln()).abs() < 1e-12);
        // tighter δ binds instead
        let c = PrivacyConstraints::build(&log, PrivacyParams::from_e_epsilon(2.0, 0.1)).unwrap();
        assert!((c.budget() - (1.0f64 / 0.9).ln()).abs() < 1e-12);
    }

    #[test]
    fn unpreprocessed_log_rejected() {
        let mut b = SearchLogBuilder::new();
        b.add("u1", "solo", "example.com", 5).unwrap();
        b.add("u1", "google", "google.com", 1).unwrap();
        b.add("u2", "google", "google.com", 1).unwrap();
        let log = b.build();
        assert!(matches!(
            PrivacyConstraints::build(&log, params()),
            Err(CoreError::NotPreprocessed { .. })
        ));
    }

    #[test]
    fn violation_and_satisfaction() {
        let log = shared_log();
        let c = PrivacyConstraints::build(&log, params()).unwrap();
        assert!(c.satisfied_by(&[0, 0], 0.0));
        assert!(c.max_violation(&[0.0, 0.0]) < 0.0);
        // huge counts must violate
        assert!(!c.satisfied_by(&[1000, 1000], 1e-9));
    }

    #[test]
    fn zero_counts_always_satisfy() {
        let log = shared_log();
        for delta in [0.001, 0.1, 0.8] {
            let c = PrivacyConstraints::build(&log, PrivacyParams::from_e_epsilon(1.01, delta))
                .unwrap();
            assert!(c.satisfied_by(&[0, 0], 0.0));
        }
    }

    #[test]
    fn max_coefficient_is_most_sensitive_triplet() {
        let log = shared_log();
        let c = PrivacyConstraints::build(&log, params()).unwrap();
        let (_, _, v) = c.max_coefficient().unwrap();
        // the most sensitive triplet is u1 holding 3 of 4 "book" clicks:
        // t = 4/1 = 4
        assert!((v - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn add_to_problem_round_trips() {
        use dpsan_lp::problem::{Sense, VarBounds};
        let log = shared_log();
        let c = PrivacyConstraints::build(&log, params()).unwrap();
        let mut p = Problem::new(Sense::Maximize);
        let cols: Vec<usize> =
            (0..c.n_pairs()).map(|_| p.add_col(1.0, VarBounds::non_negative()).unwrap()).collect();
        c.add_to_problem(&mut p, &cols);
        assert_eq!(p.n_rows(), c.n_rows());
        // activity agreement at a random point
        let x = vec![2.0, 5.0];
        let via_problem = p.matrix().matvec(&x);
        let via_rows = c.row_activity(&x);
        for (a, b) in via_problem.iter().zip(&via_rows) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
