//! The end-to-end sanitization pipeline (Algorithm 1).
//!
//! ```text
//! input log ──preprocess──▶ D ──build constraints──▶ UMP solve ──▶ x*
//!      x* ──(optional Laplace, §4.2)──▶ x̃ ──multinomial sampling──▶ O
//! ```
//!
//! The output `O` has the identical schema as the input; the sampled
//! counts are differentially private by Theorem 1 (re-verified on the
//! final integer counts before any sampling happens).

use rand::rngs::StdRng;
use rand::SeedableRng;

use dpsan_dp::composition::BudgetLedger;
use dpsan_dp::multinomial::MultinomialStrategy;
use dpsan_dp::params::PrivacyParams;
use dpsan_lp::simplex::SimplexOptions;
use dpsan_searchlog::{preprocess, PreprocessReport, SearchLog};

use crate::constraints::PrivacyConstraints;
use crate::end_to_end::{noisy_counts, repair_counts};
use crate::error::CoreError;
use crate::sampling::sample_output;
use crate::ump::diversity::{solve_dump_with, DumpOptions, DumpSolver};
use crate::ump::frequent::{solve_fump_with, FumpOptions};
use crate::ump::output_size::{solve_oump_with, OumpOptions};

/// Which utility-maximizing problem drives the sanitization.
#[derive(Debug, Clone)]
pub enum UtilityObjective {
    /// O-UMP: maximize the output size.
    OutputSize,
    /// F-UMP: preserve frequent-pair supports at a fixed output size.
    FrequentPairs {
        /// Minimum support `s`.
        min_support: f64,
        /// Target output size `|O| ∈ (0, λ]`.
        output_size: u64,
    },
    /// F-UMP over an externally supplied frequent-pair set — the
    /// streaming entrypoint: `dpsan-stream` mines candidates with its
    /// heavy-hitters sketch and exactifies them against the
    /// preprocessed log, so the solve skips the full-histogram scan.
    /// Pair ids must refer to the *preprocessed* input (preprocessing
    /// is idempotent and id-stable, so passing an already-preprocessed
    /// log through [`Sanitizer::sanitize`] keeps them valid).
    SketchedFrequentPairs {
        /// The frequent pairs to protect (exact counts/supports).
        frequent: Vec<dpsan_searchlog::FrequentPair>,
        /// The support threshold the set was mined at (reporting /
        /// validation only; the LP uses the supplied set as-is).
        min_support: f64,
        /// Target output size `|O| ∈ (0, λ]`.
        output_size: u64,
    },
    /// D-UMP: maximize pair diversity.
    Diversity {
        /// BIP solver choice.
        solver: DumpSolver,
    },
}

/// Optional Section-4.2 end-to-end step: Laplace noise on the optimal
/// counts (the count *computation* becomes ε′-differentially private
/// given sensitivity `d`).
#[derive(Debug, Clone, Copy)]
pub struct LaplaceStep {
    /// Count sensitivity bound `d`.
    pub sensitivity: f64,
    /// Privacy parameter ε′ of the count-computation step.
    pub epsilon_prime: f64,
}

/// Sanitizer configuration.
#[derive(Debug, Clone)]
pub struct SanitizerConfig {
    /// The `(ε, δ)` parameters of the sampling mechanism.
    pub params: PrivacyParams,
    /// Utility objective (which UMP to solve).
    pub objective: UtilityObjective,
    /// RNG seed (sampling and noise are deterministic given the seed).
    pub seed: u64,
    /// Multinomial sampling strategy.
    pub strategy: MultinomialStrategy,
    /// Optional Laplace step on the counts.
    pub laplace: Option<LaplaceStep>,
    /// LP solver options shared by the UMP solves.
    pub lp: SimplexOptions,
}

impl SanitizerConfig {
    /// A sensible default configuration for the given parameters and
    /// objective.
    pub fn new(params: PrivacyParams, objective: UtilityObjective) -> Self {
        SanitizerConfig {
            params,
            objective,
            seed: 0xd95a_11ce,
            strategy: MultinomialStrategy::Auto,
            laplace: None,
            lp: SimplexOptions::default(),
        }
    }
}

/// The sanitizer: a configured instance of Algorithm 1.
#[derive(Debug, Clone)]
pub struct Sanitizer {
    config: SanitizerConfig,
}

/// Everything produced by one sanitization run.
#[derive(Debug)]
pub struct SanitizedOutput {
    /// The sanitized search log (identical schema as the input).
    pub output: SearchLog,
    /// The preprocessed input `D` (unique pairs removed) — the log the
    /// counts refer to.
    pub preprocessed: SearchLog,
    /// Final integer output counts per preprocessed pair (after the
    /// optional Laplace step).
    pub counts: Vec<u64>,
    /// What preprocessing removed (Condition 1).
    pub report: PreprocessReport,
    /// Privacy expenditures of the run.
    pub ledger: BudgetLedger,
}

impl Sanitizer {
    /// Create a sanitizer from a configuration.
    pub fn new(config: SanitizerConfig) -> Self {
        Sanitizer { config }
    }

    /// Convenience constructor with defaults.
    pub fn with_objective(params: PrivacyParams, objective: UtilityObjective) -> Self {
        Sanitizer::new(SanitizerConfig::new(params, objective))
    }

    /// The configuration in use.
    pub fn config(&self) -> &SanitizerConfig {
        &self.config
    }

    /// Run Algorithm 1 on a raw input log.
    pub fn sanitize(&self, input: &SearchLog) -> Result<SanitizedOutput, CoreError> {
        let cfg = &self.config;
        let (pre, report) = preprocess(input);
        let constraints = PrivacyConstraints::build(&pre, cfg.params)?;

        // step 1: optimal output counts
        let mut counts: Vec<u64> = match &cfg.objective {
            UtilityObjective::OutputSize => {
                solve_oump_with(
                    &constraints,
                    &OumpOptions { lp: cfg.lp.clone(), ..Default::default() },
                )?
                .counts
            }
            UtilityObjective::FrequentPairs { min_support, output_size } => {
                solve_fump_with(
                    &pre,
                    &constraints,
                    &FumpOptions {
                        lp: cfg.lp.clone(),
                        ..FumpOptions::new(*min_support, *output_size)
                    },
                )?
                .counts
            }
            UtilityObjective::SketchedFrequentPairs { frequent, min_support, output_size } => {
                solve_fump_with(
                    &pre,
                    &constraints,
                    &FumpOptions {
                        lp: cfg.lp.clone(),
                        ..FumpOptions::new(*min_support, *output_size)
                            .with_frequent(frequent.clone())
                    },
                )?
                .counts
            }
            UtilityObjective::Diversity { solver } => {
                solve_dump_with(
                    &constraints,
                    &DumpOptions { solver: solver.clone(), lp: cfg.lp.clone() },
                )?
                .counts
            }
        };

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ledger = BudgetLedger::new();
        ledger.spend("multinomial sampling (Theorem 1)", cfg.params.epsilon(), cfg.params.delta());

        // optional §4.2 Laplace step on the counts
        if let Some(lap) = cfg.laplace {
            let noisy = noisy_counts(&mut rng, &counts, lap.sensitivity, lap.epsilon_prime);
            counts = repair_counts(&constraints, &noisy);
            ledger.spend("Laplace on optimal counts (§4.2)", lap.epsilon_prime, 0.0);
        }

        // the released counts must satisfy Theorem 1 — always re-checked
        crate::ump::verify_counts(&constraints, &counts)?;

        // step 2: multinomial sampling
        let output = sample_output(&mut rng, &pre, &counts, cfg.strategy);

        Ok(SanitizedOutput { output, preprocessed: pre, counts, report, ledger })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{diversity_retained, precision_recall};
    use crate::sampling::output_pair_counts;
    use dpsan_searchlog::SearchLogBuilder;

    fn input_log() -> SearchLog {
        // pairs spread across many holders with small shares so that
        // the LP optima survive flooring (the regime of real logs)
        let mut b = SearchLogBuilder::new();
        for k in 0..10 {
            b.add(&format!("u{k}"), "google", "google.com", 10).unwrap();
        }
        for k in 0..8 {
            b.add(&format!("u{k}"), "weather", "weather.com", 5).unwrap();
        }
        for k in 3..9 {
            b.add(&format!("u{k}"), "news", "cnn.com", 4).unwrap();
        }
        for k in 5..10 {
            b.add(&format!("u{k}"), "maps", "maps.google.com", 3).unwrap();
        }
        b.add("u99", "unique", "unique.org", 4).unwrap(); // removed by preprocessing
        b.build()
    }

    fn params() -> PrivacyParams {
        PrivacyParams::from_e_epsilon(2.0, 0.5)
    }

    #[test]
    fn oump_pipeline_end_to_end() {
        let input = input_log();
        let s = Sanitizer::with_objective(params(), UtilityObjective::OutputSize);
        let out = s.sanitize(&input).unwrap();
        assert_eq!(out.report.removed_pairs, 1, "the unique pair is dropped");
        assert_eq!(out.preprocessed.n_pairs(), 4);
        // output totals equal the computed counts
        assert_eq!(output_pair_counts(&out.preprocessed, &out.output), out.counts);
        // constraints hold on the released counts
        let c = PrivacyConstraints::build(&out.preprocessed, params()).unwrap();
        assert!(c.satisfied_by(&out.counts, 1e-9));
        assert!(out.output.size() > 0, "a generous budget yields a non-empty output");
    }

    #[test]
    fn fump_pipeline_respects_output_size() {
        let input = input_log();
        // first learn λ, then ask for half of it
        let o = Sanitizer::with_objective(params(), UtilityObjective::OutputSize)
            .sanitize(&input)
            .unwrap();
        let lambda: u64 = o.counts.iter().sum();
        assert!(lambda > 2);
        let s = Sanitizer::with_objective(
            params(),
            UtilityObjective::FrequentPairs { min_support: 0.1, output_size: lambda / 2 },
        );
        let out = s.sanitize(&input).unwrap();
        let total: u64 = out.counts.iter().sum();
        assert!(total <= lambda / 2);
        let pr = precision_recall(&out.preprocessed, &out.counts, 0.1);
        assert!(pr.precision > 0.0);
    }

    #[test]
    fn sketched_frequent_set_matches_mined_pipeline() {
        let input = input_log();
        let lambda: u64 = Sanitizer::with_objective(params(), UtilityObjective::OutputSize)
            .sanitize(&input)
            .unwrap()
            .counts
            .iter()
            .sum();
        let mined = Sanitizer::with_objective(
            params(),
            UtilityObjective::FrequentPairs { min_support: 0.1, output_size: lambda / 2 },
        )
        .sanitize(&input)
        .unwrap();
        // supply the exact frequent set of the preprocessed log — the
        // streamed-ingestion contract — and expect identical output
        let (pre, _) = dpsan_searchlog::preprocess(&input);
        let frequent = dpsan_searchlog::frequent_pairs(&pre, 0.1);
        let sketched = Sanitizer::with_objective(
            params(),
            UtilityObjective::SketchedFrequentPairs {
                frequent,
                min_support: 0.1,
                output_size: lambda / 2,
            },
        )
        .sanitize(&input)
        .unwrap();
        assert_eq!(sketched.counts, mined.counts);
        assert_eq!(
            output_pair_counts(&sketched.preprocessed, &sketched.output),
            output_pair_counts(&mined.preprocessed, &mined.output),
        );
    }

    #[test]
    fn dump_pipeline_keeps_distinct_pairs() {
        let input = input_log();
        let s = Sanitizer::with_objective(
            params(),
            UtilityObjective::Diversity { solver: DumpSolver::Spe },
        );
        let out = s.sanitize(&input).unwrap();
        assert!(out.counts.iter().all(|&c| c <= 1), "D-UMP counts are binary");
        assert!(diversity_retained(&out.counts) > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let input = input_log();
        let s = Sanitizer::with_objective(params(), UtilityObjective::OutputSize);
        let a = s.sanitize(&input).unwrap();
        let b = s.sanitize(&input).unwrap();
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.output.size(), b.output.size());
    }

    #[test]
    fn laplace_step_records_ledger_and_stays_private() {
        let input = input_log();
        let mut cfg = SanitizerConfig::new(params(), UtilityObjective::OutputSize);
        cfg.laplace = Some(LaplaceStep { sensitivity: 1.0, epsilon_prime: 0.5 });
        let out = Sanitizer::new(cfg).sanitize(&input).unwrap();
        assert_eq!(out.ledger.entries().len(), 2);
        assert!((out.ledger.total_epsilon() - (params().epsilon() + 0.5)).abs() < 1e-12);
        let c = PrivacyConstraints::build(&out.preprocessed, params()).unwrap();
        assert!(c.satisfied_by(&out.counts, 1e-9), "repair keeps noisy counts private");
    }

    #[test]
    fn output_schema_identical_to_input() {
        let input = input_log();
        let s = Sanitizer::with_objective(params(), UtilityObjective::OutputSize);
        let out = s.sanitize(&input).unwrap();
        // every output record is a (user, query, url, count) tuple over
        // the input vocabulary — write + re-read as TSV to prove schema
        let mut buf = Vec::new();
        dpsan_searchlog::io::write_tsv(&out.output, &mut buf).unwrap();
        let reread = dpsan_searchlog::io::read_tsv(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(reread.size(), out.output.size());
        assert_eq!(reread.n_pairs(), out.output.n_pairs());
    }
}
