//! Deprecated config-style front-end of the paper's pipeline.
//!
//! The mechanism API was redesigned around the
//! [`Sanitizer`](crate::mechanism::Sanitizer) **trait** in
//! [`crate::mechanism`]; the paper's pipeline is
//! [`UmpSanitizer`]. The struct here is
//! a thin shim over that impl — byte-identical output for identical
//! configuration — kept for one release to ease migration:
//!
//! ```text
//! old: Sanitizer::with_objective(params, obj).sanitize(&log)
//! new: UmpSanitizer::new(obj).sanitize(&log, params, seed)
//! ```
//!
//! [`UtilityObjective`] and [`LaplaceStep`] moved to the mechanism
//! module and are re-exported here unchanged.

use dpsan_dp::composition::BudgetLedger;
use dpsan_dp::multinomial::MultinomialStrategy;
use dpsan_dp::params::PrivacyParams;
use dpsan_lp::simplex::SimplexOptions;
use dpsan_searchlog::{PreprocessReport, SearchLog};

use crate::error::CoreError;
use crate::mechanism::{Sanitizer as _, UmpSanitizer};

pub use crate::mechanism::{LaplaceStep, UtilityObjective};

/// Sanitizer configuration.
#[deprecated(note = "configure `dpsan_core::mechanism::UmpSanitizer` with its builder methods")]
#[derive(Debug, Clone)]
pub struct SanitizerConfig {
    /// The `(ε, δ)` parameters of the sampling mechanism.
    pub params: PrivacyParams,
    /// Utility objective (which UMP to solve).
    pub objective: UtilityObjective,
    /// RNG seed (sampling and noise are deterministic given the seed).
    pub seed: u64,
    /// Multinomial sampling strategy.
    pub strategy: MultinomialStrategy,
    /// Optional Laplace step on the counts.
    pub laplace: Option<LaplaceStep>,
    /// LP solver options shared by the UMP solves.
    pub lp: SimplexOptions,
}

#[allow(deprecated)]
impl SanitizerConfig {
    /// A sensible default configuration for the given parameters and
    /// objective.
    pub fn new(params: PrivacyParams, objective: UtilityObjective) -> Self {
        SanitizerConfig {
            params,
            objective,
            seed: 0xd95a_11ce,
            strategy: MultinomialStrategy::Auto,
            laplace: None,
            lp: SimplexOptions::default(),
        }
    }
}

/// The sanitizer: a configured instance of Algorithm 1.
#[deprecated(note = "use the `dpsan_core::mechanism::Sanitizer` trait and `UmpSanitizer`")]
#[derive(Debug, Clone)]
#[allow(deprecated)]
pub struct Sanitizer {
    config: SanitizerConfig,
}

/// Everything produced by one sanitization run.
#[deprecated(
    note = "use `dpsan_core::mechanism::Release` (field `preprocessed` became `reference`)"
)]
#[derive(Debug)]
pub struct SanitizedOutput {
    /// The sanitized search log (identical schema as the input).
    pub output: SearchLog,
    /// The preprocessed input `D` (unique pairs removed) — the log the
    /// counts refer to.
    pub preprocessed: SearchLog,
    /// Final integer output counts per preprocessed pair (after the
    /// optional Laplace step).
    pub counts: Vec<u64>,
    /// What preprocessing removed (Condition 1).
    pub report: PreprocessReport,
    /// Privacy expenditures of the run.
    pub ledger: BudgetLedger,
}

#[allow(deprecated)]
impl Sanitizer {
    /// Create a sanitizer from a configuration.
    pub fn new(config: SanitizerConfig) -> Self {
        Sanitizer { config }
    }

    /// Convenience constructor with defaults.
    pub fn with_objective(params: PrivacyParams, objective: UtilityObjective) -> Self {
        Sanitizer::new(SanitizerConfig::new(params, objective))
    }

    /// The configuration in use.
    pub fn config(&self) -> &SanitizerConfig {
        &self.config
    }

    /// Run Algorithm 1 on a raw input log (delegates to
    /// [`UmpSanitizer`]; output is byte-identical for identical
    /// configuration).
    pub fn sanitize(&self, input: &SearchLog) -> Result<SanitizedOutput, CoreError> {
        let cfg = &self.config;
        let mut mech = UmpSanitizer::new(cfg.objective.clone())
            .with_strategy(cfg.strategy)
            .with_lp_options(cfg.lp.clone());
        if let Some(lap) = cfg.laplace {
            mech = mech.with_laplace(lap);
        }
        let r = mech.sanitize(input, cfg.params, cfg.seed)?;
        Ok(SanitizedOutput {
            output: r.output,
            preprocessed: r.reference,
            counts: r.counts,
            report: r.report,
            ledger: r.ledger,
        })
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::mechanism::testutil::input_log;
    use crate::sampling::output_pair_counts;

    fn params() -> PrivacyParams {
        PrivacyParams::from_e_epsilon(2.0, 0.5)
    }

    /// The shim's contract: identical configuration produces output
    /// byte-identical to the trait path it delegates to.
    #[test]
    fn shim_matches_trait_path_exactly() {
        use crate::mechanism::{Sanitizer as _, UmpSanitizer, UtilityObjective};
        let input = input_log();
        let old = Sanitizer::with_objective(params(), UtilityObjective::OutputSize)
            .sanitize(&input)
            .unwrap();
        let new = UmpSanitizer::new(UtilityObjective::OutputSize)
            .sanitize(&input, params(), 0xd95a_11ce)
            .unwrap();
        assert_eq!(old.counts, new.counts);
        let mut a = Vec::new();
        let mut b = Vec::new();
        dpsan_searchlog::io::write_tsv(&old.output, &mut a).unwrap();
        dpsan_searchlog::io::write_tsv(&new.output, &mut b).unwrap();
        assert_eq!(a, b, "shim and trait releases are byte-identical");
    }

    #[test]
    fn shim_laplace_step_composes_in_ledger() {
        let input = input_log();
        let mut cfg = SanitizerConfig::new(params(), UtilityObjective::OutputSize);
        cfg.laplace = Some(LaplaceStep { sensitivity: 1.0, epsilon_prime: 0.5 });
        let out = Sanitizer::new(cfg).sanitize(&input).unwrap();
        assert_eq!(out.ledger.entries().len(), 2);
        assert_eq!(output_pair_counts(&out.preprocessed, &out.output), out.counts);
    }
}
