//! Multinomial user-ID sampling (Algorithm 1, step 2).
//!
//! For every pair `(q_i, u_j)` with optimal output count `x*_ij > 0`,
//! run `x*_ij` independent multinomial trials; each trial samples user
//! `s_k` with probability `c_ijk / c_ij` given by the *input* query–url–
//! user histogram. The sampled triplet counts `x_ijk` form the output
//! log — with the identical schema as the input, the paper's headline
//! property.

use rand::Rng;

use dpsan_dp::multinomial::{sample_multinomial, MultinomialStrategy};
use dpsan_searchlog::{LogRecord, PairId, SearchLog, SearchLogBuilder};

/// Sample a sanitized output log.
///
/// `counts[p]` is the number of multinomial trials for pair `p` of
/// `log` (the preprocessed input). Pairs with zero count are absent
/// from the output.
pub fn sample_output<R: Rng>(
    rng: &mut R,
    log: &SearchLog,
    counts: &[u64],
    strategy: MultinomialStrategy,
) -> SearchLog {
    assert_eq!(counts.len(), log.n_pairs(), "need one count per pair");
    let mut builder = SearchLogBuilder::with_vocabulary_of(log);
    for (pi, &trials) in counts.iter().enumerate() {
        if trials == 0 {
            continue;
        }
        let pair = PairId::from_index(pi);
        let holders: Vec<_> = log.holders(pair).collect();
        let weights: Vec<u64> = holders.iter().map(|t| t.count).collect();
        let sampled = sample_multinomial(rng, &weights, trials, strategy);
        let (q, u) = log.pair_key(pair);
        for (holder, &x_ijk) in holders.iter().zip(&sampled) {
            if x_ijk > 0 {
                builder
                    .add_record(LogRecord { user: holder.user, query: q, url: u, count: x_ijk })
                    .expect("positive sampled count");
            }
        }
    }
    builder.build()
}

/// The per-pair total counts of an output log expressed in the pair id
/// space of the input log (0 for pairs absent from the output). Useful
/// for comparing sampled outputs against the optimal counts.
pub fn output_pair_counts(input: &SearchLog, output: &SearchLog) -> Vec<u64> {
    (0..input.n_pairs())
        .map(|pi| {
            let (q, u) = input.pair_key(PairId::from_index(pi));
            output.pair_id(q, u).map_or(0, |op| output.pair_total(op))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsan_searchlog::preprocess;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn figure1_log() -> SearchLog {
        let mut b = SearchLogBuilder::new();
        b.add("081", "pregnancy test nyc", "medicinenet.com", 2).unwrap();
        b.add("081", "book", "amazon.com", 3).unwrap();
        b.add("081", "google", "google.com", 15).unwrap();
        b.add("082", "google", "google.com", 7).unwrap();
        b.add("082", "diabetes medecine", "walmart.com", 1).unwrap();
        b.add("082", "car price", "kbb.com", 2).unwrap();
        b.add("083", "car price", "kbb.com", 5).unwrap();
        b.add("083", "google", "google.com", 17).unwrap();
        b.add("083", "book", "amazon.com", 1).unwrap();
        let (log, _) = preprocess(&b.build());
        log
    }

    #[test]
    fn output_totals_match_requested_counts() {
        let log = figure1_log();
        // the Figure 1 example: counts {0, 3, 20, 0, 4}-style
        let mut counts = vec![0u64; log.n_pairs()];
        counts[0] = 3;
        counts[log.n_pairs() - 1] = 4;
        let mut rng = StdRng::seed_from_u64(1);
        let out = sample_output(&mut rng, &log, &counts, MultinomialStrategy::Auto);
        let got = output_pair_counts(&log, &out);
        assert_eq!(got, counts);
        assert_eq!(out.size(), 7);
    }

    #[test]
    fn output_preserves_schema_and_vocabulary() {
        let log = figure1_log();
        let counts = vec![5u64; log.n_pairs()];
        let mut rng = StdRng::seed_from_u64(2);
        let out = sample_output(&mut rng, &log, &counts, MultinomialStrategy::Auto);
        // same interners: ids map to the same strings
        assert_eq!(out.users().len(), log.users().len());
        assert_eq!(out.queries().len(), log.queries().len());
        for r in out.records() {
            assert!(r.count > 0);
            // every sampled user actually held the pair in the input
            let p = log.pair_id(r.query, r.url).expect("pair exists in input");
            assert!(
                log.holders(p).any(|t| t.user == r.user),
                "sampled a user who never held the pair"
            );
        }
    }

    #[test]
    fn zero_counts_produce_empty_output() {
        let log = figure1_log();
        let counts = vec![0u64; log.n_pairs()];
        let mut rng = StdRng::seed_from_u64(3);
        let out = sample_output(&mut rng, &log, &counts, MultinomialStrategy::Auto);
        assert_eq!(out.size(), 0);
        assert_eq!(out.n_pairs(), 0);
    }

    #[test]
    fn sampled_histogram_tracks_input_shape() {
        // Section 3.2 property: E[x_ijk] = x_ij c_ijk / c_ij — with many
        // trials the sampled histogram shape approaches the input shape.
        let log = figure1_log();
        let google = PairId::from_index(
            (0..log.n_pairs())
                .find(|&i| log.pair_total(PairId::from_index(i)) == 39)
                .expect("google pair"),
        );
        let mut counts = vec![0u64; log.n_pairs()];
        counts[google.index()] = 39_000;
        let mut rng = StdRng::seed_from_u64(4);
        let out = sample_output(&mut rng, &log, &counts, MultinomialStrategy::Auto);
        let (q, u) = log.pair_key(google);
        let op = out.pair_id(q, u).unwrap();
        for t in out.holders(op) {
            let c_ijk = log.triplet_count(google, t.user) as f64;
            let expect = 39_000.0 * c_ijk / 39.0;
            assert!(
                (t.count as f64 - expect).abs() < expect * 0.05,
                "user {}: {} vs {}",
                t.user,
                t.count,
                expect
            );
        }
    }

    #[test]
    fn strategies_produce_valid_outputs() {
        let log = figure1_log();
        let counts = vec![10u64; log.n_pairs()];
        for strategy in
            [MultinomialStrategy::Auto, MultinomialStrategy::Alias, MultinomialStrategy::CdfScan]
        {
            let mut rng = StdRng::seed_from_u64(5);
            let out = sample_output(&mut rng, &log, &counts, strategy);
            assert_eq!(output_pair_counts(&log, &out), counts);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let log = figure1_log();
        let counts = vec![7u64; log.n_pairs()];
        let sample = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = sample_output(&mut rng, &log, &counts, MultinomialStrategy::Auto);
            let mut rec: Vec<_> = out.records().collect();
            rec.sort_unstable_by_key(|r| (r.query.0, r.url.0, r.user.0));
            rec
        };
        assert_eq!(sample(42), sample(42));
    }
}
