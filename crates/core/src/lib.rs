//! # dpsan-core
//!
//! The paper's contribution: *differentially private search-log
//! sanitization with optimal output utility* (Hong, Vaidya, Lu, Wu —
//! EDBT 2012).
//!
//! The sanitization (Algorithm 1) has two steps:
//!
//! 1. compute optimal output counts `x*_ij` for every query–url pair by
//!    solving a **utility-maximizing problem** whose constraints
//!    (Theorem 1) guarantee `(ε, δ)`-probabilistic differential privacy —
//!    see [`constraints`] and the three objectives in [`ump`];
//! 2. sample user-IDs for each pair with `⌊x*_ij⌋` multinomial trials —
//!    see [`sampling`] — so the output has the *identical schema* as the
//!    input search log.
//!
//! [`mechanism`] is the mechanism API: the [`Sanitizer`]
//! trait plus three impls — the paper's pipeline
//! ([`mechanism::UmpSanitizer`]: preprocessing → UMP → optional
//! Section-4.2 Laplace step → sampling), Götz et al.'s ZEALOUS
//! noisy-threshold release ([`mechanism::ZealousSanitizer`]), and a
//! local-model randomized-response baseline
//! ([`mechanism::LdpSanitizer`]) — so the evaluation harness can score
//! rival mechanisms on shared metrics. For a service that re-releases
//! an evolving log, [`mechanism::ReleasePlanner`] drives repeated
//! releases through one mechanism, a trigger policy, and an *enforced*
//! cross-release budget ledger. [`metrics`]
//! implements every utility measure of the evaluation (precision/recall
//! of frequent pairs, support distances, diversity, `DiffRatio`
//! histograms, the cross-mechanism [`metrics::MechanismScore`]);
//! [`theory`] computes the probabilities of Eqs. (1)–(3) in closed form
//! and exhaustively checks Definition 2 on tiny logs; [`end_to_end`]
//! implements the leave-one-out sensitivity bounding and Laplace
//! noising of the count-computation step.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraints;
pub mod end_to_end;
pub mod error;
pub mod mechanism;
pub mod metrics;
pub mod obs;
pub mod sampling;
pub mod session;
pub mod theory;
pub mod ump;

pub use constraints::PrivacyConstraints;
pub use error::CoreError;
pub use mechanism::{
    LdpSanitizer, MechanismInfo, PrivacyModel, Release, ReleasePlanner, Sanitizer, TriggerPolicy,
    UmpSanitizer, UtilityObjective, ZealousSanitizer,
};
pub use session::{SessionStats, SolveSession, Strategy};
pub use ump::diversity::{solve_dump, DumpOptions, DumpSolution, DumpSolver};
pub use ump::frequent::{solve_fump, FumpOptions, FumpSolution};
pub use ump::output_size::{solve_oump, OumpOptions, OumpSolution};
