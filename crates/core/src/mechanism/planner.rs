//! Re-release planning for an always-on sanitization service.
//!
//! A one-shot [`Sanitizer`] answers "sanitize this log"; a service
//! under continuous traffic must answer two more questions — *when* to
//! re-release, and *whether the privacy budget allows it*. Repeated
//! publication composes sequentially (Götz et al.), so each re-release
//! of the evolving log debits the same lifetime `(ε, δ)` ledger, and a
//! release that would overdraw it must be refused outright rather than
//! quietly weakening the guarantee.
//!
//! [`ReleasePlanner`] owns all three pieces: the mechanism, a
//! [`TriggerPolicy`] fed by observed ingest volume, and a cross-release
//! [`BudgetLedger`]. The ingest layer calls
//! [`observe_rows`](ReleasePlanner::observe_rows) as chunks arrive and
//! [`release`](ReleasePlanner::release) when [`due`](ReleasePlanner::due)
//! fires (or unconditionally, for a final flush). A refused release is
//! a clean no-op: the ledger, trigger state, and the caller's ingest
//! state are all left untouched, so the service keeps ingesting and can
//! surface the refusal without losing data.
//!
//! Wall-clock window triggers live in the serve layer (`dpsan-serve`),
//! which has a clock; this planner is deliberately clock-free so its
//! behavior is fully deterministic under test.

use dpsan_dp::composition::BudgetLedger;
use dpsan_dp::params::PrivacyParams;
use dpsan_searchlog::SearchLog;

use crate::error::CoreError;
use crate::mechanism::{Release, Sanitizer};

/// When the planner considers a re-release due.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerPolicy {
    /// Re-release once this many new input rows have been observed
    /// since the last successful release. `0` means "never due on row
    /// count" — the caller triggers explicitly (e.g. on a wall-clock
    /// window).
    pub every_rows: u64,
}

impl TriggerPolicy {
    /// An event-count trigger: due after `every_rows` new rows.
    pub fn every_rows(every_rows: u64) -> Self {
        TriggerPolicy { every_rows }
    }

    /// A manual trigger: never due on its own.
    pub fn manual() -> Self {
        TriggerPolicy { every_rows: 0 }
    }
}

/// Drives repeated releases of an evolving log through one mechanism,
/// one trigger policy, and one cross-release budget ledger.
#[derive(Debug)]
pub struct ReleasePlanner<S> {
    mechanism: S,
    trigger: TriggerPolicy,
    ledger: BudgetLedger,
    pending_rows: u64,
    releases: u64,
}

impl<S: Sanitizer> ReleasePlanner<S> {
    /// A planner with an *uncapped* ledger: every release is granted,
    /// composition is recorded but not enforced.
    pub fn new(mechanism: S, trigger: TriggerPolicy) -> Self {
        ReleasePlanner {
            mechanism,
            trigger,
            // the planner's ledger is the one authoritative spend record
            // in the process, so it reports to the telemetry registry
            ledger: BudgetLedger::new().observed(),
            pending_rows: 0,
            releases: 0,
        }
    }

    /// A planner that *enforces* the lifetime budget `(ε, δ)` across
    /// all its releases: a release whose debit would overdraw the
    /// ledger fails with [`CoreError::Budget`] and changes nothing.
    pub fn with_lifetime_budget(
        mechanism: S,
        trigger: TriggerPolicy,
        epsilon: f64,
        delta: f64,
    ) -> Self {
        ReleasePlanner {
            mechanism,
            trigger,
            ledger: BudgetLedger::with_lifetime(epsilon, delta).observed(),
            pending_rows: 0,
            releases: 0,
        }
    }

    /// A planner resuming from durable state: `ledger` carries the
    /// spends replayed from the release-manifest chain, `releases`
    /// counts the manifests, and `pending_rows` is how far ingestion
    /// had run past the last release. The planner behaves exactly as
    /// if it had performed those releases itself — in particular a
    /// capped ledger keeps refusing once the replayed history exhausts
    /// the lifetime budget.
    pub fn restore(
        mechanism: S,
        trigger: TriggerPolicy,
        ledger: BudgetLedger,
        releases: u64,
        pending_rows: u64,
    ) -> Self {
        // marking observed *after* replay syncs the gauges to the
        // restored totals without counting history as fresh spends
        ReleasePlanner { mechanism, trigger, ledger: ledger.observed(), pending_rows, releases }
    }

    /// Record that `rows` new input rows were ingested.
    pub fn observe_rows(&mut self, rows: u64) {
        self.pending_rows += rows;
    }

    /// Whether the trigger policy calls for a re-release now.
    pub fn due(&self) -> bool {
        self.trigger.every_rows > 0 && self.pending_rows >= self.trigger.every_rows
    }

    /// Run one release of `log` (the current snapshot of the evolving
    /// input), debiting the cross-release ledger.
    ///
    /// On success the pending-row counter resets. On *any* error —
    /// including a budget refusal — the planner's ledger, trigger
    /// state, and release count are exactly as before the call.
    pub fn release(
        &mut self,
        log: &SearchLog,
        params: PrivacyParams,
        seed: u64,
    ) -> Result<Release, CoreError> {
        let release = self.mechanism.sanitize_into(log, params, seed, &mut self.ledger)?;
        self.pending_rows = 0;
        self.releases += 1;
        Ok(release)
    }

    /// The mechanism driven by this planner.
    pub fn mechanism(&self) -> &S {
        &self.mechanism
    }

    /// The cross-release budget ledger (every successful release has
    /// appended its entries here).
    pub fn ledger(&self) -> &BudgetLedger {
        &self.ledger
    }

    /// The trigger policy in use.
    pub fn trigger(&self) -> TriggerPolicy {
        self.trigger
    }

    /// Rows observed since the last successful release.
    pub fn pending_rows(&self) -> u64 {
        self.pending_rows
    }

    /// Number of successful releases so far.
    pub fn releases(&self) -> u64 {
        self.releases
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::testutil::input_log;
    use crate::mechanism::{UmpSanitizer, UtilityObjective, ZealousSanitizer};

    fn params() -> PrivacyParams {
        PrivacyParams::from_e_epsilon(2.0, 0.5)
    }

    const SEED: u64 = 0xd95a_11ce;

    #[test]
    fn trigger_fires_on_accumulated_rows() {
        let mut p = ReleasePlanner::new(ZealousSanitizer::new(), TriggerPolicy::every_rows(100));
        assert!(!p.due());
        p.observe_rows(60);
        assert!(!p.due());
        p.observe_rows(60);
        assert!(p.due(), "120 ≥ 100 rows pending");
        p.release(&input_log(), params(), SEED).unwrap();
        assert!(!p.due(), "successful release resets the counter");
        assert_eq!(p.pending_rows(), 0);
        assert_eq!(p.releases(), 1);
    }

    #[test]
    fn manual_trigger_is_never_due() {
        let mut p = ReleasePlanner::new(ZealousSanitizer::new(), TriggerPolicy::manual());
        p.observe_rows(1_000_000);
        assert!(!p.due());
        // ...but an explicit release still works
        p.release(&input_log(), params(), SEED).unwrap();
        assert_eq!(p.releases(), 1);
    }

    #[test]
    fn ledger_composes_across_releases() {
        let mut p = ReleasePlanner::new(ZealousSanitizer::new(), TriggerPolicy::manual());
        for _ in 0..3 {
            p.release(&input_log(), params(), SEED).unwrap();
        }
        assert_eq!(p.ledger().entries().len(), 3);
        assert!((p.ledger().total_epsilon() - 3.0 * params().epsilon()).abs() < 1e-9);
        assert!((p.ledger().total_delta() - 3.0 * params().delta()).abs() < 1e-9);
    }

    #[test]
    fn over_budget_release_is_refused_cleanly() {
        // lifetime admits exactly two releases
        let pp = PrivacyParams::from_e_epsilon(2.0, 0.2);
        let mut p = ReleasePlanner::with_lifetime_budget(
            ZealousSanitizer::new(),
            TriggerPolicy::every_rows(10),
            2.0 * pp.epsilon(),
            2.0 * pp.delta(),
        );
        p.observe_rows(10);
        p.release(&input_log(), pp, SEED).unwrap();
        p.observe_rows(10);
        p.release(&input_log(), pp, SEED).unwrap();
        p.observe_rows(10);
        let before_entries = p.ledger().entries().len();
        let err = p.release(&input_log(), pp, SEED).unwrap_err();
        assert!(matches!(err, CoreError::Budget(_)), "got {err}");
        assert_eq!(p.ledger().entries().len(), before_entries, "ledger unchanged");
        assert_eq!(p.releases(), 2, "release count unchanged");
        assert_eq!(p.pending_rows(), 10, "trigger state unchanged — data not lost");
    }

    #[test]
    fn planner_releases_match_one_shot_sanitize() {
        // routing through the planner must not perturb the mechanism
        let mechanism = UmpSanitizer::new(UtilityObjective::OutputSize);
        let one_shot = mechanism.sanitize(&input_log(), params(), SEED).unwrap();
        let mut p = ReleasePlanner::new(
            UmpSanitizer::new(UtilityObjective::OutputSize),
            TriggerPolicy::manual(),
        );
        let planned = p.release(&input_log(), params(), SEED).unwrap();
        assert_eq!(planned.counts, one_shot.counts);
        let mut a = Vec::new();
        let mut b = Vec::new();
        dpsan_searchlog::io::write_tsv(&planned.output, &mut a).unwrap();
        dpsan_searchlog::io::write_tsv(&one_shot.output, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn restored_planner_keeps_enforcing_the_replayed_history() {
        let pp = PrivacyParams::from_e_epsilon(2.0, 0.2);
        // History worth two releases, replayed into a capped ledger
        // that only affords two.
        let mut ledger = BudgetLedger::with_lifetime(2.0 * pp.epsilon(), 2.0 * pp.delta());
        ledger.spend("release 1", pp.epsilon(), pp.delta());
        ledger.spend("release 2", pp.epsilon(), pp.delta());
        let mut p = ReleasePlanner::restore(
            ZealousSanitizer::new(),
            TriggerPolicy::every_rows(10),
            ledger,
            2,
            7,
        );
        assert_eq!(p.releases(), 2);
        assert_eq!(p.pending_rows(), 7);
        assert!(!p.due());
        p.observe_rows(3);
        assert!(p.due());
        let err = p.release(&input_log(), pp, SEED).unwrap_err();
        assert!(matches!(err, CoreError::Budget(_)), "replayed spends still bind: {err}");
        assert_eq!(p.releases(), 2);
    }

    #[test]
    fn boxed_mechanism_works_through_planner() {
        let boxed: Box<dyn Sanitizer> = Box::new(ZealousSanitizer::new());
        let mut p = ReleasePlanner::new(boxed, TriggerPolicy::manual());
        p.release(&input_log(), params(), SEED).unwrap();
        assert_eq!(p.mechanism().info().id, "zealous");
    }

    #[test]
    fn ump_refusal_spends_nothing_and_skips_the_solver() {
        let mut p = ReleasePlanner::with_lifetime_budget(
            UmpSanitizer::new(UtilityObjective::OutputSize),
            TriggerPolicy::manual(),
            params().epsilon() / 2.0,
            0.999,
        );
        let err = p.release(&input_log(), params(), SEED).unwrap_err();
        assert!(matches!(err, CoreError::Budget(_)));
        assert!(p.ledger().entries().is_empty());
        assert_eq!(p.mechanism().session_stats().solves, 0, "refusal happens before any LP work");
    }
}
