//! The mechanism abstraction: one [`Sanitizer`] trait, many
//! sanitization mechanisms.
//!
//! The paper's LP-based pipeline ([`UmpSanitizer`]) is one point in a
//! design space of private search-log release mechanisms. This module
//! defines the common contract — preprocess-aligned released counts, a
//! schema-compatible output log, explicit budget accounting — so rival
//! mechanisms plug in as one trait impl each and the evaluation harness
//! can score them on shared utility metrics (`repro compare`):
//!
//! * [`UmpSanitizer`] — Hong et al. (EDBT 2012): utility-maximizing
//!   multinomial sampling under `(ε, δ)`-probabilistic DP (this paper);
//! * [`ZealousSanitizer`] — Götz et al.: two-phase noisy-threshold
//!   heavy-hitter release under `(ε, δ)`-indistinguishability;
//! * [`LdpSanitizer`] — per-user randomized response in the local
//!   model (Ding et al.'s linear reduction), no trusted curator.
//!
//! # Example
//!
//! ```
//! use dpsan_core::mechanism::{Sanitizer, UmpSanitizer, UtilityObjective};
//! use dpsan_dp::params::PrivacyParams;
//! use dpsan_searchlog::SearchLogBuilder;
//!
//! let mut b = SearchLogBuilder::new();
//! for k in 0..8 {
//!     b.add(&format!("u{k}"), "rust lang", "rust-lang.org", 3).unwrap();
//!     b.add(&format!("u{k}"), "weather", "weather.com", 2).unwrap();
//! }
//! b.add("u0", "my private query", "example.org", 5).unwrap();
//! let input = b.build();
//!
//! let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
//! let mechanism = UmpSanitizer::new(UtilityObjective::OutputSize);
//! let release = mechanism.sanitize(&input, params, 7).unwrap();
//!
//! assert_eq!(release.report.removed_pairs, 1); // Condition 1
//! assert_eq!(release.ledger.entries().len(), 1); // one budget debit
//! assert!(release.output.size() > 0);
//! ```

pub mod ldp;
pub mod planner;
pub mod ump;
pub mod zealous;

pub use ldp::{LdpOptions, LdpSanitizer};
pub use planner::{ReleasePlanner, TriggerPolicy};
pub use ump::{LaplaceStep, UmpSanitizer, UtilityObjective};
pub use zealous::{zealous_plan, ZealousDecision, ZealousOptions, ZealousPlan, ZealousSanitizer};

use dpsan_dp::composition::BudgetLedger;
use dpsan_dp::params::PrivacyParams;
use dpsan_searchlog::{PreprocessReport, SearchLog};

use crate::error::CoreError;
use crate::session::SessionStats;

/// The privacy model a mechanism's guarantee lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivacyModel {
    /// `(ε, δ)`-probabilistic differential privacy (Definition 2 of the
    /// paper): the output distribution violates the ε-ratio with
    /// probability at most δ.
    ProbabilisticDp,
    /// `(ε, δ)`-indistinguishability: neighboring inputs produce any
    /// output set with probabilities within `e^ε`, up to additive δ.
    ApproximateDp,
    /// ε-local differential privacy: each user randomizes their own
    /// record; no trusted curator sees raw data.
    LocalDp,
}

impl std::fmt::Display for PrivacyModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrivacyModel::ProbabilisticDp => write!(f, "(eps,delta)-probabilistic DP"),
            PrivacyModel::ApproximateDp => write!(f, "(eps,delta)-indistinguishability"),
            PrivacyModel::LocalDp => write!(f, "eps-local DP"),
        }
    }
}

/// Static metadata describing a mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MechanismInfo {
    /// Stable machine-readable id (the `--mechanism` CLI name).
    pub id: &'static str,
    /// Human-readable mechanism name.
    pub name: &'static str,
    /// The work the mechanism reproduces.
    pub paper: &'static str,
    /// The privacy model of its guarantee.
    pub privacy: PrivacyModel,
    /// Whether releases run LP solves through a
    /// [`SolveSession`](crate::session::SolveSession) (if `false`, the
    /// [`Release::solver`] counters are always zero).
    pub uses_lp: bool,
}

/// Everything one sanitization release produces, mechanism-independent.
#[derive(Debug)]
pub struct Release {
    /// The sanitized search log, in the input's 4-column schema.
    pub output: SearchLog,
    /// The preprocessed input `D` (Condition 1 applied) the released
    /// counts are indexed against — the shared frame every mechanism's
    /// utility metrics are computed in.
    pub reference: SearchLog,
    /// Released count per [`Release::reference`] pair (zero for
    /// suppressed pairs). Always `reference.n_pairs()` long.
    pub counts: Vec<u64>,
    /// What preprocessing removed.
    pub report: PreprocessReport,
    /// Privacy expenditures of this release (every mechanism debits its
    /// ledger exactly once per release; the optional UMP Laplace step
    /// adds a second entry).
    pub ledger: BudgetLedger,
    /// LP-solver counters of this release. All-zero for mechanisms
    /// that never touch a `SolveSession` (ZEALOUS, LDP) — `repro
    /// --stats` aggregates these unconditionally instead of special-
    /// casing non-LP mechanisms.
    pub solver: SessionStats,
}

/// A differentially private search-log sanitization mechanism.
///
/// Implementations take a *raw* input log (preprocessing is applied
/// internally and is idempotent, so passing an already-preprocessed log
/// is fine), the privacy parameters, and an RNG seed; they return a
/// [`Release`] whose counts refer to the preprocessed input. Given the
/// same `(log, params, seed)` a release is deterministic, and because
/// streamed sharded ingestion builds a structurally identical
/// [`SearchLog`], releases are byte-identical across `--shards` /
/// `--jobs` values.
///
/// The full `(ε, δ)` parameters are passed rather than the collapsed
/// budget `B = min{ε, ln 1/(1−δ)}` of Eq. (4): only the UMP constraint
/// system consumes the collapsed form ([`PrivacyParams::budget`]),
/// while threshold and local mechanisms calibrate on ε and δ
/// separately.
///
/// # Budget accounting
///
/// [`sanitize_into`](Sanitizer::sanitize_into) is the required method:
/// it charges the release's full expenditure to a **caller-owned**
/// [`BudgetLedger`] *before* doing any mechanism work, atomically (a
/// release that spends twice, e.g. sampling + Laplace, either charges
/// both entries or neither). On a ledger with a lifetime cap
/// ([`BudgetLedger::with_lifetime`]) an over-budget release is refused
/// with [`CoreError::Budget`] — cheaply, with no LP solve and no state
/// mutated. This is how a service composes privacy loss across repeated
/// publication of the same evolving log; [`ReleasePlanner`] drives it.
///
/// [`sanitize`](Sanitizer::sanitize) is the one-shot convenience: it
/// forwards to `sanitize_into` with a fresh uncapped ledger, so a single
/// release can never be refused.
pub trait Sanitizer {
    /// Static mechanism metadata.
    fn info(&self) -> MechanismInfo;

    /// Run one release, charging its expenditure to `ledger`.
    ///
    /// On `Err` — including a [`CoreError::Budget`] refusal — `ledger`
    /// is left exactly as it was. The returned [`Release::ledger`]
    /// records this release's own entries (a per-release view of what
    /// was just appended to `ledger`).
    fn sanitize_into(
        &self,
        log: &SearchLog,
        params: PrivacyParams,
        seed: u64,
        ledger: &mut BudgetLedger,
    ) -> Result<Release, CoreError>;

    /// Run one stand-alone release against a fresh uncapped ledger.
    fn sanitize(
        &self,
        log: &SearchLog,
        params: PrivacyParams,
        seed: u64,
    ) -> Result<Release, CoreError> {
        let mut ledger = BudgetLedger::new();
        self.sanitize_into(log, params, seed, &mut ledger)
    }
}

impl<S: Sanitizer + ?Sized> Sanitizer for Box<S> {
    fn info(&self) -> MechanismInfo {
        (**self).info()
    }

    fn sanitize_into(
        &self,
        log: &SearchLog,
        params: PrivacyParams,
        seed: u64,
        ledger: &mut BudgetLedger,
    ) -> Result<Release, CoreError> {
        (**self).sanitize_into(log, params, seed, ledger)
    }

    fn sanitize(
        &self,
        log: &SearchLog,
        params: PrivacyParams,
        seed: u64,
    ) -> Result<Release, CoreError> {
        (**self).sanitize(log, params, seed)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use dpsan_searchlog::{SearchLog, SearchLogBuilder};

    /// The shared mechanism-test fixture: pairs spread across many
    /// holders with small shares so the LP optima survive flooring
    /// (the regime of real logs), plus one unique pair that
    /// preprocessing removes.
    pub(crate) fn input_log() -> SearchLog {
        let mut b = SearchLogBuilder::new();
        for k in 0..10 {
            b.add(&format!("u{k}"), "google", "google.com", 10).unwrap();
        }
        for k in 0..8 {
            b.add(&format!("u{k}"), "weather", "weather.com", 5).unwrap();
        }
        for k in 3..9 {
            b.add(&format!("u{k}"), "news", "cnn.com", 4).unwrap();
        }
        for k in 5..10 {
            b.add(&format!("u{k}"), "maps", "maps.google.com", 3).unwrap();
        }
        b.add("u99", "unique", "unique.org", 4).unwrap();
        b.build()
    }
}
