//! Local-model baseline: per-user randomized response over the pair
//! vocabulary, as a [`Sanitizer`] impl.
//!
//! Each user reduces their log to a presence vector over the
//! preprocessed pair vocabulary, capped at their `d` heaviest pairs,
//! and pushes every bit through a randomized-response channel at
//! per-bit budget `ε′ = ε/(2d)` (Ding et al.'s linear reduction — two
//! capped records differ in at most `2d` bits, so the whole report is
//! ε-LDP at the user level; see [`dpsan_dp::response`]). The released
//! log keeps real user attributions: each user's report is safe to
//! publish under their own randomizer, which is the point of the local
//! model — no trusted curator.
//!
//! Determinism and the user-complete sharding invariant: each user's
//! channel is seeded from the release seed and a stable hash of their
//! *name* (FNV-1a, the same family `dpsan-stream` shards by), never
//! from shard layout or iteration order — and streamed ingestion
//! produces a structurally identical log anyway — so releases are
//! byte-identical across `--shards`/`--jobs`.
//!
//! Cost: randomizing every (user, pair) bit is `O(users × pairs)` —
//! the honest cost of the local model, since reporting only true bits
//! would leak which bits were present.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dpsan_dp::composition::BudgetLedger;
use dpsan_dp::params::PrivacyParams;
use dpsan_dp::response::RandomizedResponse;
use dpsan_searchlog::{preprocess, PairId, SearchLog, SearchLogBuilder};

use crate::error::CoreError;
use crate::mechanism::{MechanismInfo, PrivacyModel, Release, Sanitizer};
use crate::session::SessionStats;

/// Configuration of the LDP randomized-response mechanism.
#[derive(Debug, Clone)]
pub struct LdpOptions {
    /// Per-user presence cap `d`: each user reports at most their `d`
    /// heaviest pairs as true bits. Smaller caps concentrate the
    /// per-bit budget (`ε′ = ε/(2d)`).
    pub max_pairs_per_user: u64,
}

impl Default for LdpOptions {
    fn default() -> Self {
        LdpOptions { max_pairs_per_user: 4 }
    }
}

/// The per-user RNG seed: release seed mixed with a stable FNV-1a hash
/// of the user name. Depends only on `(seed, name)`, never on shard
/// layout or user-id assignment order.
pub fn ldp_user_seed(seed: u64, user_name: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in user_name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h ^ seed
}

/// The local-model randomized-response mechanism.
#[derive(Debug, Clone, Default)]
pub struct LdpSanitizer {
    opts: LdpOptions,
}

impl LdpSanitizer {
    /// A sanitizer with the default cap (`d = 4`).
    pub fn new() -> Self {
        Self::default()
    }

    /// A sanitizer with explicit options.
    pub fn with_options(opts: LdpOptions) -> Self {
        LdpSanitizer { opts }
    }

    /// The options in use.
    pub fn options(&self) -> &LdpOptions {
        &self.opts
    }
}

impl Sanitizer for LdpSanitizer {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            id: "ldp-rr",
            name: "LDP randomized response (linear reduction)",
            paper: "Ding et al. (local-model baseline)",
            privacy: PrivacyModel::LocalDp,
            uses_lp: false,
        }
    }

    fn sanitize_into(
        &self,
        log: &SearchLog,
        params: PrivacyParams,
        seed: u64,
        caller: &mut BudgetLedger,
    ) -> Result<Release, CoreError> {
        // One pure-ε debit per release; refuse over-budget up front.
        caller.try_spend("per-user randomized response (ε-LDP)", params.epsilon(), 0.0)?;

        let (pre, report) = preprocess(log);
        let n = pre.n_pairs();
        let cap = self.opts.max_pairs_per_user;
        let rr = RandomizedResponse::per_item(params.epsilon(), cap);

        let mut counts = vec![0u64; n];
        let mut builder = SearchLogBuilder::with_vocabulary_of(&pre);
        let mut bits = vec![false; n];
        for user in pre.users_with_logs() {
            // the user's capped presence vector: d heaviest pairs
            // (ties by pair id), one bit per vocabulary pair
            let mut items: Vec<(u64, usize)> =
                pre.user_log(user).map(|r| (r.count, r.pair.index())).collect();
            items.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            bits.iter_mut().for_each(|b| *b = false);
            for &(_, idx) in items.iter().take(cap as usize) {
                bits[idx] = true;
            }

            let name = pre.users().resolve(user.0);
            let mut rng = StdRng::seed_from_u64(ldp_user_seed(seed, name));
            for (idx, &bit) in bits.iter().enumerate() {
                if rr.randomize(&mut rng, bit) {
                    counts[idx] += 1;
                    let (q, u) = pre.pair_key(PairId::from_index(idx));
                    builder
                        .add(name, pre.queries().resolve(q.0), pre.urls().resolve(u.0), 1)
                        .expect("reported pair over the input vocabulary");
                }
            }
        }
        let output = builder.build();

        let mut ledger = BudgetLedger::new();
        ledger.spend("per-user randomized response (ε-LDP)", params.epsilon(), 0.0);

        Ok(Release {
            output,
            reference: pre,
            counts,
            report,
            ledger,
            solver: SessionStats::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::testutil::input_log;

    fn params() -> PrivacyParams {
        PrivacyParams::from_e_epsilon(2.0, 0.5)
    }

    #[test]
    fn deterministic_given_seed() {
        let input = input_log();
        let s = LdpSanitizer::new();
        let a = s.sanitize(&input, params(), 11).unwrap();
        let b = s.sanitize(&input, params(), 11).unwrap();
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.output.n_triplets(), b.output.n_triplets());
        let c = s.sanitize(&input, params(), 12).unwrap();
        assert_ne!(a.counts, c.counts, "a different seed flips different bits");
    }

    #[test]
    fn every_user_reports_every_pair_bit() {
        // each user emits one bernoulli per vocabulary pair, so any
        // released count is at most the number of reporting users
        let input = input_log();
        let r = LdpSanitizer::new().sanitize(&input, params(), 11).unwrap();
        let users = r.reference.users_with_logs().count() as u64;
        assert!(r.counts.iter().all(|&c| c <= users));
        assert_eq!(r.counts.len(), r.reference.n_pairs());
    }

    #[test]
    fn ledger_debits_pure_epsilon_once() {
        let r = LdpSanitizer::new().sanitize(&input_log(), params(), 11).unwrap();
        assert_eq!(r.ledger.entries().len(), 1);
        assert!((r.ledger.total_epsilon() - params().epsilon()).abs() < 1e-12);
        assert_eq!(r.ledger.total_delta(), 0.0, "pure ε-LDP spends no δ");
        assert_eq!(r.solver, SessionStats::default(), "no LP touched");
    }

    #[test]
    fn user_seed_is_stable_and_name_sensitive() {
        assert_eq!(ldp_user_seed(5, "alice"), ldp_user_seed(5, "alice"));
        assert_ne!(ldp_user_seed(5, "alice"), ldp_user_seed(5, "bob"));
        assert_ne!(ldp_user_seed(5, "alice"), ldp_user_seed(6, "alice"));
    }

    #[test]
    fn output_keeps_real_user_attributions() {
        let input = input_log();
        let r = LdpSanitizer::new().sanitize(&input, params(), 11).unwrap();
        // every output user exists in the input vocabulary
        for rec in r.output.records() {
            let name = r.output.users().resolve(rec.user.0);
            assert!(r.reference.users().get(name).is_some(), "unknown user {name:?}");
        }
    }
}
