//! The paper's mechanism behind the [`Sanitizer`] trait: utility-
//! maximizing LP solve + multinomial sampling (Algorithm 1).
//!
//! ```text
//! input log ──preprocess──▶ D ──build constraints──▶ UMP solve ──▶ x*
//!      x* ──(optional Laplace, §4.2)──▶ x̃ ──multinomial sampling──▶ O
//! ```
//!
//! One [`UmpSanitizer`] owns a [`SolveSession`], so consecutive
//! releases at nearby parameters warm-start from the previous optimal
//! basis exactly like the evaluation harness's grid sweeps; a single
//! release solves cold and is byte-identical to the plain
//! [`solve_oump`](crate::ump::output_size::solve_oump)-style pipeline.

use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dpsan_dp::composition::BudgetLedger;
use dpsan_dp::multinomial::MultinomialStrategy;
use dpsan_dp::params::PrivacyParams;
use dpsan_lp::simplex::SimplexOptions;
use dpsan_searchlog::{preprocess, SearchLog};

use crate::constraints::PrivacyConstraints;
use crate::end_to_end::{noisy_counts, repair_counts};
use crate::error::CoreError;
use crate::mechanism::{MechanismInfo, PrivacyModel, Release, Sanitizer};
use crate::sampling::sample_output;
use crate::session::{SessionStats, SolveSession};
use crate::ump::diversity::{DumpOptions, DumpSolver};
use crate::ump::frequent::FumpOptions;
use crate::ump::output_size::OumpOptions;

/// Which utility-maximizing problem drives the sanitization.
#[derive(Debug, Clone)]
pub enum UtilityObjective {
    /// O-UMP: maximize the output size.
    OutputSize,
    /// F-UMP: preserve frequent-pair supports at a fixed output size.
    FrequentPairs {
        /// Minimum support `s`.
        min_support: f64,
        /// Target output size `|O| ∈ (0, λ]`.
        output_size: u64,
    },
    /// F-UMP over an externally supplied frequent-pair set — the
    /// streaming entrypoint: `dpsan-stream` mines candidates with its
    /// heavy-hitters sketch and exactifies them against the
    /// preprocessed log, so the solve skips the full-histogram scan.
    /// Pair ids must refer to the *preprocessed* input (preprocessing
    /// is idempotent and id-stable, so passing an already-preprocessed
    /// log through [`Sanitizer::sanitize`] keeps them valid).
    SketchedFrequentPairs {
        /// The frequent pairs to protect (exact counts/supports).
        frequent: Vec<dpsan_searchlog::FrequentPair>,
        /// The support threshold the set was mined at (reporting /
        /// validation only; the LP uses the supplied set as-is).
        min_support: f64,
        /// Target output size `|O| ∈ (0, λ]`.
        output_size: u64,
    },
    /// D-UMP: maximize pair diversity.
    Diversity {
        /// BIP solver choice.
        solver: DumpSolver,
    },
}

/// Optional Section-4.2 end-to-end step: Laplace noise on the optimal
/// counts (the count *computation* becomes ε′-differentially private
/// given sensitivity `d`).
#[derive(Debug, Clone, Copy)]
pub struct LaplaceStep {
    /// Count sensitivity bound `d`.
    pub sensitivity: f64,
    /// Privacy parameter ε′ of the count-computation step.
    pub epsilon_prime: f64,
}

/// The paper's mechanism: UMP solve + multinomial sampling, as a
/// [`Sanitizer`] impl.
pub struct UmpSanitizer {
    objective: UtilityObjective,
    strategy: MultinomialStrategy,
    laplace: Option<LaplaceStep>,
    session: Mutex<SolveSession>,
    anytime: bool,
}

impl UmpSanitizer {
    /// A sanitizer with default sampling strategy, no Laplace step, and
    /// default LP options.
    pub fn new(objective: UtilityObjective) -> Self {
        UmpSanitizer {
            objective,
            strategy: MultinomialStrategy::Auto,
            laplace: None,
            session: Mutex::new(SolveSession::new(SimplexOptions::default())),
            anytime: false,
        }
    }

    /// Override the multinomial sampling strategy.
    pub fn with_strategy(mut self, strategy: MultinomialStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Add the §4.2 Laplace step on the optimal counts (debits a second
    /// ledger entry per release).
    pub fn with_laplace(mut self, laplace: LaplaceStep) -> Self {
        self.laplace = Some(laplace);
        self
    }

    /// Override the LP options of the wrapped [`SolveSession`]
    /// (resets any accumulated warm-start state).
    pub fn with_lp_options(mut self, lp: SimplexOptions) -> Self {
        self.session = Mutex::new(SolveSession::new(lp));
        self
    }

    /// Budgeted "anytime" solving: cap the LP at `max_iter` simplex
    /// iterations and accept the best feasible iterate when the cap
    /// strikes (O-UMP objective only; see
    /// [`crate::ump::output_size::OumpOptions::anytime`]). What lets a
    /// 10⁵-user sanitize finish under a wall-clock budget — phase-2
    /// iterates are always privacy-feasible, so the cap trades utility
    /// (λ), never privacy. Resets any accumulated warm-start state.
    pub fn with_lp_iteration_budget(mut self, max_iter: usize) -> Self {
        let lp = SimplexOptions { max_iter, ..SimplexOptions::default() };
        self.session = Mutex::new(SolveSession::new(lp));
        self.anytime = true;
        self
    }

    /// The utility objective in use.
    pub fn objective(&self) -> &UtilityObjective {
        &self.objective
    }

    /// Cumulative LP-solver counters across every release of this
    /// instance (per-release deltas are on [`Release::solver`]).
    pub fn session_stats(&self) -> SessionStats {
        self.session.lock().expect("session poisoned").stats()
    }
}

impl Sanitizer for UmpSanitizer {
    fn info(&self) -> MechanismInfo {
        let (id, name) = match &self.objective {
            UtilityObjective::OutputSize => ("oump", "O-UMP (max output size)"),
            UtilityObjective::FrequentPairs { .. }
            | UtilityObjective::SketchedFrequentPairs { .. } => {
                ("fump", "F-UMP (frequent-pair preservation)")
            }
            UtilityObjective::Diversity { .. } => ("dump", "D-UMP (max pair diversity)"),
        };
        MechanismInfo {
            id,
            name,
            paper: "Hong, Vaidya, Lu, Wu (EDBT 2012)",
            privacy: PrivacyModel::ProbabilisticDp,
            uses_lp: true,
        }
    }

    fn sanitize_into(
        &self,
        log: &SearchLog,
        params: PrivacyParams,
        seed: u64,
        caller: &mut BudgetLedger,
    ) -> Result<Release, CoreError> {
        // This release's full expenditure, known up front: the sampling
        // debit plus the optional Laplace debit. Refuse an over-budget
        // release *before* any LP work (probe on a copy so a solver
        // error later cannot leave the caller ledger half-charged).
        let mut batch = vec![dpsan_dp::BudgetEntry {
            label: "multinomial sampling (Theorem 1)".into(),
            epsilon: params.epsilon(),
            delta: params.delta(),
        }];
        if let Some(lap) = self.laplace {
            batch.push(dpsan_dp::BudgetEntry {
                label: "Laplace on optimal counts (§4.2)".into(),
                epsilon: lap.epsilon_prime,
                delta: 0.0,
            });
        }
        caller.clone().try_spend_all(&batch)?;

        let (pre, report) = preprocess(log);
        let constraints = PrivacyConstraints::build(&pre, params)?;

        // step 1: optimal output counts, through the shared session
        let (mut counts, solver) = {
            let mut session = self.session.lock().expect("session poisoned");
            let before = session.stats();
            let lp = session.lp_options().clone();
            let counts = match &self.objective {
                UtilityObjective::OutputSize => {
                    session
                        .solve_oump(
                            &constraints,
                            &OumpOptions { lp, anytime: self.anytime, ..Default::default() },
                        )?
                        .counts
                }
                UtilityObjective::FrequentPairs { min_support, output_size } => {
                    session
                        .solve_fump(
                            &pre,
                            &constraints,
                            &FumpOptions { lp, ..FumpOptions::new(*min_support, *output_size) },
                        )?
                        .counts
                }
                UtilityObjective::SketchedFrequentPairs { frequent, min_support, output_size } => {
                    session
                        .solve_fump(
                            &pre,
                            &constraints,
                            &FumpOptions {
                                lp,
                                ..FumpOptions::new(*min_support, *output_size)
                                    .with_frequent(frequent.clone())
                            },
                        )?
                        .counts
                }
                UtilityObjective::Diversity { solver } => {
                    session
                        .solve_dump(&constraints, &DumpOptions { solver: solver.clone(), lp })?
                        .counts
                }
            };
            (counts, session.stats().delta(&before))
        };

        let mut rng = StdRng::seed_from_u64(seed);

        // optional §4.2 Laplace step on the counts
        if let Some(lap) = self.laplace {
            let noisy = noisy_counts(&mut rng, &counts, lap.sensitivity, lap.epsilon_prime);
            counts = repair_counts(&constraints, &noisy);
        }

        // the released counts must satisfy Theorem 1 — always re-checked
        crate::ump::verify_counts(&constraints, &counts)?;

        // step 2: multinomial sampling
        let output = sample_output(&mut rng, &pre, &counts, self.strategy);

        // Success: charge the caller (the probe above proved this fits,
        // and we hold the only reference, so it cannot fail now) and
        // mirror the entries into the per-release ledger.
        caller.try_spend_all(&batch).expect("pre-flight budget probe passed");
        let mut ledger = BudgetLedger::new();
        ledger.try_spend_all(&batch).expect("fresh ledger is uncapped");

        Ok(Release { output, reference: pre, counts, report, ledger, solver })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::testutil::input_log;
    use crate::metrics::{diversity_retained, precision_recall};
    use crate::sampling::output_pair_counts;

    fn params() -> PrivacyParams {
        PrivacyParams::from_e_epsilon(2.0, 0.5)
    }

    const SEED: u64 = 0xd95a_11ce;

    #[test]
    fn oump_pipeline_end_to_end() {
        let input = input_log();
        let s = UmpSanitizer::new(UtilityObjective::OutputSize);
        let out = s.sanitize(&input, params(), SEED).unwrap();
        assert_eq!(out.report.removed_pairs, 1, "the unique pair is dropped");
        assert_eq!(out.reference.n_pairs(), 4);
        // output totals equal the computed counts
        assert_eq!(output_pair_counts(&out.reference, &out.output), out.counts);
        // constraints hold on the released counts
        let c = PrivacyConstraints::build(&out.reference, params()).unwrap();
        assert!(c.satisfied_by(&out.counts, 1e-9));
        assert!(out.output.size() > 0, "a generous budget yields a non-empty output");
        // one release = one LP solve, cold
        assert_eq!(out.solver.solves, 1);
        assert_eq!(out.solver.cold_starts, 1);
    }

    #[test]
    fn fump_pipeline_respects_output_size() {
        let input = input_log();
        // first learn λ, then ask for half of it
        let o = UmpSanitizer::new(UtilityObjective::OutputSize)
            .sanitize(&input, params(), SEED)
            .unwrap();
        let lambda: u64 = o.counts.iter().sum();
        assert!(lambda > 2);
        let s = UmpSanitizer::new(UtilityObjective::FrequentPairs {
            min_support: 0.1,
            output_size: lambda / 2,
        });
        let out = s.sanitize(&input, params(), SEED).unwrap();
        let total: u64 = out.counts.iter().sum();
        assert!(total <= lambda / 2);
        let pr = precision_recall(&out.reference, &out.counts, 0.1);
        assert!(pr.precision > 0.0);
    }

    #[test]
    fn sketched_frequent_set_matches_mined_pipeline() {
        let input = input_log();
        let lambda: u64 = UmpSanitizer::new(UtilityObjective::OutputSize)
            .sanitize(&input, params(), SEED)
            .unwrap()
            .counts
            .iter()
            .sum();
        let mined = UmpSanitizer::new(UtilityObjective::FrequentPairs {
            min_support: 0.1,
            output_size: lambda / 2,
        })
        .sanitize(&input, params(), SEED)
        .unwrap();
        // supply the exact frequent set of the preprocessed log — the
        // streamed-ingestion contract — and expect identical output
        let (pre, _) = dpsan_searchlog::preprocess(&input);
        let frequent = dpsan_searchlog::frequent_pairs(&pre, 0.1);
        let sketched = UmpSanitizer::new(UtilityObjective::SketchedFrequentPairs {
            frequent,
            min_support: 0.1,
            output_size: lambda / 2,
        })
        .sanitize(&input, params(), SEED)
        .unwrap();
        assert_eq!(sketched.counts, mined.counts);
        assert_eq!(
            output_pair_counts(&sketched.reference, &sketched.output),
            output_pair_counts(&mined.reference, &mined.output),
        );
    }

    #[test]
    fn dump_pipeline_keeps_distinct_pairs() {
        let input = input_log();
        let s = UmpSanitizer::new(UtilityObjective::Diversity { solver: DumpSolver::Spe });
        let out = s.sanitize(&input, params(), SEED).unwrap();
        assert!(out.counts.iter().all(|&c| c <= 1), "D-UMP counts are binary");
        assert!(diversity_retained(&out.counts) > 0.0);
        // SPE never runs the LP
        assert_eq!(out.solver.solves, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let input = input_log();
        let s = UmpSanitizer::new(UtilityObjective::OutputSize);
        let a = s.sanitize(&input, params(), SEED).unwrap();
        let b = s.sanitize(&input, params(), SEED).unwrap();
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.output.size(), b.output.size());
    }

    #[test]
    fn consecutive_releases_warm_start() {
        let input = input_log();
        let s = UmpSanitizer::new(UtilityObjective::OutputSize);
        let a = s.sanitize(&input, PrivacyParams::from_e_epsilon(1.4, 0.5), SEED).unwrap();
        assert_eq!(a.solver.cold_starts, 1);
        // a budget move on the same log is an rhs-only perturbation:
        // the second release reoptimizes from the previous basis
        let b = s.sanitize(&input, PrivacyParams::from_e_epsilon(2.0, 0.5), SEED).unwrap();
        assert_eq!(b.solver.cold_starts, 0, "second release reuses the session basis");
        assert_eq!(b.solver.solves, 1);
        assert_eq!(s.session_stats().solves, 2, "cumulative counters span releases");
    }

    #[test]
    fn laplace_step_records_ledger_and_stays_private() {
        let input = input_log();
        let s = UmpSanitizer::new(UtilityObjective::OutputSize)
            .with_laplace(LaplaceStep { sensitivity: 1.0, epsilon_prime: 0.5 });
        let out = s.sanitize(&input, params(), SEED).unwrap();
        assert_eq!(out.ledger.entries().len(), 2);
        assert!((out.ledger.total_epsilon() - (params().epsilon() + 0.5)).abs() < 1e-12);
        let c = PrivacyConstraints::build(&out.reference, params()).unwrap();
        assert!(c.satisfied_by(&out.counts, 1e-9), "repair keeps noisy counts private");
    }

    #[test]
    fn output_schema_identical_to_input() {
        let input = input_log();
        let s = UmpSanitizer::new(UtilityObjective::OutputSize);
        let out = s.sanitize(&input, params(), SEED).unwrap();
        // every output record is a (user, query, url, count) tuple over
        // the input vocabulary — write + re-read as TSV to prove schema
        let mut buf = Vec::new();
        dpsan_searchlog::io::write_tsv(&out.output, &mut buf).unwrap();
        let reread = dpsan_searchlog::io::read_tsv(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(reread.size(), out.output.size());
        assert_eq!(reread.n_pairs(), out.output.n_pairs());
    }

    #[test]
    fn info_tracks_objective() {
        assert_eq!(UmpSanitizer::new(UtilityObjective::OutputSize).info().id, "oump");
        assert_eq!(
            UmpSanitizer::new(UtilityObjective::Diversity { solver: DumpSolver::Spe }).info().id,
            "dump"
        );
        assert!(UmpSanitizer::new(UtilityObjective::OutputSize).info().uses_lp);
    }
}
