//! ZEALOUS — Götz et al.'s two-phase noisy-threshold heavy-hitter
//! release, as a [`Sanitizer`] impl.
//!
//! Phase 1 builds a *capped* pair histogram: each user contributes at
//! most `d` clicks (their heaviest pairs first), so removing any one
//! user moves the histogram by at most `d` in L1 — the sensitivity the
//! noise is calibrated to. Pairs below the coarse cutoff `τ′` are
//! dropped. Phase 2 adds `Lap(2d/ε)` noise to each surviving count and
//! releases only pairs whose noisy count clears
//! `τ = τ′ + b·ln(1/(2δ))` (see [`dpsan_dp::threshold`]). An item the
//! coarse phase would have suppressed passes with probability ≤ δ; an
//! item `b·ln(1/(2β))` above τ is released with probability ≥ 1 − β —
//! the reliability bound the property tests exercise.
//!
//! The release is an aggregate histogram: ZEALOUS does not attribute
//! counts to users, so the output log carries every released pair under
//! the pseudonymous user `"*"` (schema-compatible with the 4-column
//! TSV, but without the per-user structure the UMP mechanisms keep).
//!
//! The candidate phase composes with streamed ingestion: the weighted
//! Misra–Gries `PairSketch` of `dpsan-stream` mines a superset of the
//! pairs with raw total ≥ τ′ in one bounded-memory pass; passing those
//! through [`ZealousOptions::candidates`] yields byte-identical output
//! to the exact in-memory scan (candidates are re-filtered against the
//! exact totals, so the mask — and therefore the noise stream — is the
//! same on both paths).

use rand::rngs::StdRng;
use rand::SeedableRng;

use dpsan_dp::composition::BudgetLedger;
use dpsan_dp::params::PrivacyParams;
use dpsan_dp::threshold;
use dpsan_searchlog::{preprocess, FrequentPair, PairId, SearchLog, SearchLogBuilder};

use crate::error::CoreError;
use crate::mechanism::{MechanismInfo, PrivacyModel, Release, Sanitizer};
use crate::session::SessionStats;

/// Configuration of the ZEALOUS mechanism.
#[derive(Debug, Clone)]
pub struct ZealousOptions {
    /// Per-user contribution cap `d` (clicks kept per user, heaviest
    /// pairs first). The histogram's user-level L1 sensitivity.
    pub contribution_cap: u64,
    /// Coarse candidate cutoff `τ′` on the capped histogram.
    pub coarse_threshold: u64,
    /// Optional externally mined candidate set: pairs whose *raw* input
    /// total may reach `τ′` (the streaming path passes sketch-mined
    /// candidates here). Re-filtered against exact totals internally,
    /// so any superset of the true candidates gives identical output.
    pub candidates: Option<Vec<FrequentPair>>,
}

impl Default for ZealousOptions {
    fn default() -> Self {
        ZealousOptions { contribution_cap: 8, coarse_threshold: 2, candidates: None }
    }
}

/// One pair's passage through the noisy threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZealousDecision {
    /// The pair (id in the preprocessed log).
    pub pair: PairId,
    /// Its capped-histogram count `h`.
    pub capped_count: u64,
    /// `h + Lap(2d/ε)`.
    pub noisy_count: f64,
    /// Whether `noisy_count ≥ τ`.
    pub released: bool,
}

/// The deterministic trace of one ZEALOUS release: calibration plus
/// the per-candidate threshold decisions, in pair-id order.
#[derive(Debug, Clone)]
pub struct ZealousPlan {
    /// Laplace noise scale `b = 2d/ε`.
    pub scale: f64,
    /// The release threshold `τ`.
    pub threshold: f64,
    /// The coarse cutoff `τ′` used.
    pub coarse_threshold: u64,
    /// The contribution cap `d` used.
    pub contribution_cap: u64,
    /// One decision per pair that survived the coarse phase.
    pub decisions: Vec<ZealousDecision>,
}

/// Compute the full ZEALOUS decision trace on a *preprocessed* log.
///
/// [`ZealousSanitizer::sanitize`] is a thin wrapper over this; tests
/// use it directly to check the threshold and reliability properties.
pub fn zealous_plan(
    pre: &SearchLog,
    params: PrivacyParams,
    seed: u64,
    opts: &ZealousOptions,
) -> ZealousPlan {
    let n = pre.n_pairs();
    let tau_prime = opts.coarse_threshold;

    // candidate mask on raw totals — identical whether the candidates
    // come from the exact scan or a (superset-complete) sketch
    let candidate: Vec<bool> = match &opts.candidates {
        Some(mined) => {
            let mut mask = vec![false; n];
            for f in mined {
                if pre.pair_total(f.pair) >= tau_prime {
                    mask[f.pair.index()] = true;
                }
            }
            mask
        }
        None => pre.pairs().map(|pe| pe.total >= tau_prime).collect(),
    };

    // phase 1: capped histogram — each user keeps at most d clicks,
    // heaviest candidate pairs first (ties by pair id)
    let mut h = vec![0u64; n];
    for user in pre.users_with_logs() {
        let mut items: Vec<(u64, usize)> = pre
            .user_log(user)
            .filter(|r| candidate[r.pair.index()])
            .map(|r| (r.count, r.pair.index()))
            .collect();
        items.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut budget = opts.contribution_cap;
        for (count, idx) in items {
            if budget == 0 {
                break;
            }
            let take = count.min(budget);
            h[idx] += take;
            budget -= take;
        }
    }

    // phase 2: noisy threshold test per surviving candidate, pair-id
    // order (one Laplace draw per candidate — deterministic given seed)
    let scale = threshold::noise_scale(opts.contribution_cap, params.epsilon());
    let tau = threshold::release_threshold(tau_prime, scale, params.delta());
    let noise = threshold::noise(opts.contribution_cap, params.epsilon());
    let mut rng = StdRng::seed_from_u64(seed);
    let decisions = (0..n)
        .filter(|&idx| candidate[idx] && h[idx] >= tau_prime)
        .map(|idx| {
            let noisy = h[idx] as f64 + noise.sample(&mut rng);
            ZealousDecision {
                pair: PairId::from_index(idx),
                capped_count: h[idx],
                noisy_count: noisy,
                released: noisy >= tau,
            }
        })
        .collect();

    ZealousPlan {
        scale,
        threshold: tau,
        coarse_threshold: tau_prime,
        contribution_cap: opts.contribution_cap,
        decisions,
    }
}

/// The ZEALOUS mechanism.
#[derive(Debug, Clone, Default)]
pub struct ZealousSanitizer {
    opts: ZealousOptions,
}

impl ZealousSanitizer {
    /// A sanitizer with the default calibration (`d = 8`, `τ′ = 2`).
    pub fn new() -> Self {
        Self::default()
    }

    /// A sanitizer with explicit options.
    pub fn with_options(opts: ZealousOptions) -> Self {
        ZealousSanitizer { opts }
    }

    /// The options in use.
    pub fn options(&self) -> &ZealousOptions {
        &self.opts
    }
}

impl Sanitizer for ZealousSanitizer {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            id: "zealous",
            name: "ZEALOUS (noisy-threshold heavy hitters)",
            paper: "Götz, Machanavajjhala, Wang, Xiao, Gehrke",
            privacy: PrivacyModel::ApproximateDp,
            uses_lp: false,
        }
    }

    fn sanitize_into(
        &self,
        log: &SearchLog,
        params: PrivacyParams,
        seed: u64,
        caller: &mut BudgetLedger,
    ) -> Result<Release, CoreError> {
        // One debit per release; refuse an over-budget release before
        // building the histogram.
        caller.try_spend("ZEALOUS noisy-threshold release", params.epsilon(), params.delta())?;

        let (pre, report) = preprocess(log);
        let plan = zealous_plan(&pre, params, seed, &self.opts);

        let mut counts = vec![0u64; pre.n_pairs()];
        let mut builder = SearchLogBuilder::with_vocabulary_of(&pre);
        for d in &plan.decisions {
            if !d.released {
                continue;
            }
            // released value: the noisy count, rounded, at least 1 —
            // it may exceed the raw input total (the noise is public)
            let c = d.noisy_count.round().max(1.0) as u64;
            counts[d.pair.index()] = c;
            let (q, u) = pre.pair_key(d.pair);
            builder
                .add("*", pre.queries().resolve(q.0), pre.urls().resolve(u.0), c)
                .expect("released pair over the input vocabulary");
        }
        let output = builder.build();

        let mut ledger = BudgetLedger::new();
        ledger.spend("ZEALOUS noisy-threshold release", params.epsilon(), params.delta());

        Ok(Release {
            output,
            reference: pre,
            counts,
            report,
            ledger,
            solver: SessionStats::default(),
        })
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use crate::mechanism::testutil::input_log;

    #[test]
    fn refused_release_charges_nothing() {
        let p = PrivacyParams::from_e_epsilon(2.0, 0.1);
        let mut ledger = BudgetLedger::with_lifetime(p.epsilon() / 2.0, 0.5);
        let err =
            ZealousSanitizer::new().sanitize_into(&input_log(), p, 7, &mut ledger).unwrap_err();
        assert!(matches!(err, CoreError::Budget(_)));
        assert!(ledger.entries().is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::testutil::input_log;
    use dpsan_dp::threshold::tail_margin;

    fn params() -> PrivacyParams {
        PrivacyParams::from_e_epsilon(2.0, 0.1)
    }

    #[test]
    fn releases_exactly_the_above_threshold_decisions() {
        let (pre, _) = preprocess(&input_log());
        let opts = ZealousOptions::default();
        let plan = zealous_plan(&pre, params(), 7, &opts);
        let release =
            ZealousSanitizer::with_options(opts).sanitize(&input_log(), params(), 7).unwrap();
        for d in &plan.decisions {
            assert_eq!(d.released, d.noisy_count >= plan.threshold);
            assert_eq!(release.counts[d.pair.index()] > 0, d.released);
        }
        // pairs without a decision are never released
        let decided: Vec<usize> = plan.decisions.iter().map(|d| d.pair.index()).collect();
        for idx in 0..pre.n_pairs() {
            if !decided.contains(&idx) {
                assert_eq!(release.counts[idx], 0);
            }
        }
    }

    #[test]
    fn capped_histogram_respects_contribution_cap() {
        let (pre, _) = preprocess(&input_log());
        let opts = ZealousOptions { contribution_cap: 3, ..Default::default() };
        let plan = zealous_plan(&pre, params(), 7, &opts);
        let total: u64 = plan.decisions.iter().map(|d| d.capped_count).sum();
        assert!(total <= 3 * pre.users_with_logs().count() as u64, "≤ d per user");
    }

    #[test]
    fn sketch_style_candidate_superset_is_output_identical() {
        let input = input_log();
        let (pre, _) = preprocess(&input);
        let exact = ZealousSanitizer::new().sanitize(&input, params(), 7).unwrap();
        // a superset candidate list (every pair) must not change output
        let all: Vec<FrequentPair> = pre
            .pairs()
            .map(|pe| FrequentPair {
                pair: pe.pair,
                count: pe.total,
                support: pe.total as f64 / pre.size() as f64,
            })
            .collect();
        let opts = ZealousOptions { candidates: Some(all), ..Default::default() };
        let sketched = ZealousSanitizer::with_options(opts).sanitize(&input, params(), 7).unwrap();
        assert_eq!(exact.counts, sketched.counts);
    }

    #[test]
    fn ledger_debits_epsilon_and_delta_once() {
        let r = ZealousSanitizer::new().sanitize(&input_log(), params(), 7).unwrap();
        assert_eq!(r.ledger.entries().len(), 1);
        assert!((r.ledger.total_epsilon() - params().epsilon()).abs() < 1e-12);
        assert!((r.ledger.total_delta() - params().delta()).abs() < 1e-12);
        assert_eq!(r.solver, SessionStats::default(), "no LP touched");
    }

    #[test]
    fn reliability_bound_holds_empirically() {
        // a pair whose capped count sits margin(β) above τ is released
        // in at least (1−β) of seeds, up to Monte-Carlo slack
        let input = input_log();
        let (pre, _) = preprocess(&input);
        let opts = ZealousOptions::default();
        let p = params();
        let beta = 0.2;
        let probe = zealous_plan(&pre, p, 0, &opts);
        let margin = tail_margin(probe.scale, beta);
        let heavy: Vec<PairId> = probe
            .decisions
            .iter()
            .filter(|d| d.capped_count as f64 >= probe.threshold + margin)
            .map(|d| d.pair)
            .collect();
        assert!(!heavy.is_empty(), "the head pair clears τ + margin at this calibration");
        let trials = 200;
        for pair in heavy {
            let released = (0..trials)
                .filter(|&seed| {
                    zealous_plan(&pre, p, seed, &opts)
                        .decisions
                        .iter()
                        .any(|d| d.pair == pair && d.released)
                })
                .count();
            let rate = released as f64 / trials as f64;
            assert!(rate >= 1.0 - beta - 0.08, "pair {pair}: rate {rate}");
        }
    }

    #[test]
    fn deterministic_given_seed_and_sensitive_to_it() {
        let input = input_log();
        let a = ZealousSanitizer::new().sanitize(&input, params(), 3).unwrap();
        let b = ZealousSanitizer::new().sanitize(&input, params(), 3).unwrap();
        assert_eq!(a.counts, b.counts);
        let plans: Vec<ZealousPlan> = (0..4)
            .map(|s| zealous_plan(&a.reference, params(), s, &ZealousOptions::default()))
            .collect();
        assert!(
            plans.windows(2).any(|w| {
                w[0].decisions
                    .iter()
                    .zip(&w[1].decisions)
                    .any(|(x, y)| (x.noisy_count - y.noisy_count).abs() > 1e-12)
            }),
            "different seeds draw different noise"
        );
    }
}
