//! A small, self-contained stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no crates.io access,
//! so the workspace vendors the slice of proptest it uses: range and
//! tuple strategies, `collection::vec`, the [`proptest!`] test macro,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and a
//! [`test_runner::TestRunner`] that replays a deterministic seed
//! sequence per test (no shrinking — failures report the case seed so
//! a run is reproducible).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// `prop::collection` — strategies over collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `element` values with a length
    /// drawn from `size` (an exact `usize` or a `usize` range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// The imports test modules are expected to glob.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a [`proptest!`] body; on failure the case
/// (and its seed) is reported and the test fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Assert two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discard the current case (it counts as neither pass nor failure)
/// unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Declare property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that samples its arguments for a configured
/// number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
            );
            runner.run(|__dpsan_proptest_rng| {
                $(
                    let $arg = $crate::strategy::Strategy::sample(
                        &($strat),
                        __dpsan_proptest_rng,
                    );
                )+
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}
