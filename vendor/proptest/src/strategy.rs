//! Value-generation strategies.
//!
//! Unlike real proptest there is no shrink tree: a [`Strategy`] simply
//! samples a value from an RNG. That keeps the trait tiny while
//! preserving the `impl Strategy<Value = T>` signatures test code
//! writes.

use rand::rngs::StdRng;
use rand::RngExt;

/// A recipe for producing random values of [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always produces the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*}
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// The length specification accepted by [`crate::collection::vec`]:
/// an exact length or a (half-open or inclusive) range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    low: usize,
    high_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { low: n, high_inclusive: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { low: r.start, high_inclusive: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange { low: *r.start(), high_inclusive: *r.end() }
    }
}

/// Strategy for `Vec`s; built by [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S: Strategy> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.random_range(self.size.low..=self.size.high_inclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
