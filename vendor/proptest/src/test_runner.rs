//! The case-running loop behind the [`crate::proptest!`] macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How a single sampled case can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; it counts as neither
    /// pass nor failure.
    Reject,
    /// A `prop_assert!`-family assertion failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A discarded case.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Runtime configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config that runs `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// Runs sampled cases until the configured count passes, a case fails,
/// or too many cases are rejected.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

/// FNV-1a, so each test's seed stream is stable across runs and
/// independent of sibling tests.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl TestRunner {
    /// A runner for the test `name` (used to derive its seed stream).
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        TestRunner { config, name }
    }

    /// Run `case` until `config.cases` cases pass.
    ///
    /// # Panics
    /// Panics (failing the enclosing `#[test]`) on the first failed
    /// case, or when rejections outnumber the case budget 16:1.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(self.name.as_bytes());
        let max_attempts = (self.config.cases as u64) * 16 + 64;
        let mut passed: u32 = 0;
        let mut attempt: u64 = 0;
        while passed < self.config.cases {
            attempt += 1;
            assert!(
                attempt <= max_attempts,
                "proptest '{}': too many rejected cases ({} accepted of {} wanted after {} attempts)",
                self.name,
                passed,
                self.config.cases,
                attempt - 1
            );
            let seed = base ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut rng = StdRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{}' failed at case seed {seed:#x} (attempt {attempt}):\n{msg}",
                        self.name
                    );
                }
            }
        }
    }
}
