//! A small, self-contained stand-in for the `criterion` crate.
//!
//! The build environment for this repository has no crates.io access,
//! so the workspace vendors the slice of criterion its benches use:
//! [`Criterion`], [`BenchmarkId`], benchmark groups with
//! `bench_function` / `bench_with_input`, `Bencher::iter`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — warm up, then time batches
//! until a wall-clock budget is spent, and report the per-iteration
//! median, mean, and min — but the reported numbers are real and the
//! API is call-compatible, so benches keep compiling (and `cargo bench`
//! keeps producing usable relative numbers) until the real harness can
//! be dropped in.
//!
//! Two environment variables hook the shim into CI:
//!
//! * `DPSAN_BENCH_JSON=path` — on drop, merge this process's results
//!   into `path` as a flat JSON object `{"group/bench": median_ns}`
//!   (see `dpsan-bench`'s `bench_gate` for the consumer).
//! * `BENCH_BUDGET_MS=n` — per-bench measurement budget in
//!   milliseconds (default 200); CI's quick tier uses a small value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function_name.into()) }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Per-bench measurement budget (milliseconds).
fn budget() -> Duration {
    let ms = std::env::var("BENCH_BUDGET_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(200);
    Duration::from_millis(ms)
}

/// Times a closure over repeated iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    total: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly and record per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes caches/allocator), untimed.
        for _ in 0..3 {
            black_box(routine());
        }
        let budget = budget();
        let started = Instant::now();
        while started.elapsed() < budget {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            self.samples.push(dt);
            self.total += dt;
            if self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    /// Median per-iteration time (`None` before any iteration ran).
    fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        Some(s[s.len() / 2])
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn run_one(&mut self, id: &str, run: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher::default();
        run(&mut b);
        let full = format!("{}/{id}", self.name);
        let Some(median) = b.median() else {
            println!("{full:<48} (no iterations recorded)");
            return;
        };
        let iters = b.samples.len();
        let mean = b.total / u32::try_from(iters).unwrap_or(u32::MAX);
        let min = b.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{full:<48} iters {iters:>6}   median {median:>12.2?}   mean {mean:>12.2?}   \
             min {min:>12.2?}"
        );
        self.criterion.results.push((full, median.as_nanos() as f64));
    }

    /// Benchmark `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.id, |b| routine(b));
        self
    }

    /// Benchmark `routine` under `id`, passing it `input` by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id, |b| routine(b, input));
        self
    }

    /// Record an externally computed statistic (nanoseconds) under
    /// `id`, as if it were a measured median: printed alongside the
    /// `iter`-based entries and merged into `$DPSAN_BENCH_JSON`.
    ///
    /// This is the escape hatch for benches whose headline number is
    /// not a per-iteration median — e.g. a p50/p99 over the per-event
    /// latencies of one replayed trace. (Real criterion would use
    /// `iter_custom`; the shim keeps the simpler explicit form.)
    pub fn report_ns(&mut self, id: impl Into<BenchmarkId>, value_ns: f64) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let shown = Duration::from_nanos(value_ns as u64);
        println!("{full:<48} reported {shown:>12.2?}");
        self.criterion.results.push((full, value_ns));
        self
    }

    /// Finish the group (flushes nothing here; kept for API parity).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    /// `(bench id, median ns)` in execution order.
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name}");
        BenchmarkGroup { name, criterion: self }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup { name: "bench".to_owned(), criterion: self };
        g.bench_function(id, routine);
        self
    }
}

impl Drop for Criterion {
    /// Merge this run's medians into `$DPSAN_BENCH_JSON` (if set) as a
    /// flat `{"bench id": median_ns}` object. Merging (rather than
    /// overwriting) lets several `criterion_group!`s and bench binaries
    /// accumulate into one file within a `cargo bench` invocation.
    fn drop(&mut self) {
        let Ok(path) = std::env::var("DPSAN_BENCH_JSON") else {
            return;
        };
        if path.is_empty() || self.results.is_empty() {
            return;
        }
        let mut merged: Vec<(String, f64)> = std::fs::read_to_string(&path)
            .ok()
            .map(|s| json::parse_flat_object(&s))
            .unwrap_or_default();
        for (k, v) in self.results.drain(..) {
            if let Some(slot) = merged.iter_mut().find(|(mk, _)| *mk == k) {
                slot.1 = v;
            } else {
                merged.push((k, v));
            }
        }
        merged.sort_by(|a, b| a.0.cmp(&b.0));
        if let Err(e) = std::fs::write(&path, json::write_flat_object(&merged)) {
            eprintln!("criterion shim: cannot write {path}: {e}");
        }
    }
}

/// Just enough JSON for the flat `{"name": number}` results file.
pub mod json {
    /// Parse a flat string→number object, ignoring anything malformed.
    /// Tolerant by design: a corrupt results file degrades to "start
    /// fresh", never to a panic inside a bench run.
    pub fn parse_flat_object(s: &str) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        let inner = s.trim().trim_start_matches('{').trim_end_matches('}');
        for part in split_top_level(inner) {
            let Some((key, value)) = part.split_once(':') else { continue };
            let key = key.trim();
            if key.len() < 2 || !key.starts_with('"') || !key.ends_with('"') {
                continue;
            }
            let Ok(value) = value.trim().parse::<f64>() else { continue };
            out.push((key[1..key.len() - 1].to_owned(), value));
        }
        out
    }

    /// Split on commas outside quotes.
    fn split_top_level(s: &str) -> Vec<&str> {
        let mut parts = Vec::new();
        let mut depth_quote = false;
        let mut start = 0;
        for (i, c) in s.char_indices() {
            match c {
                '"' => depth_quote = !depth_quote,
                ',' if !depth_quote => {
                    parts.push(&s[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        parts.push(&s[start..]);
        parts
    }

    /// Render a flat string→number object with one entry per line.
    pub fn write_flat_object(entries: &[(String, f64)]) -> String {
        let mut s = String::from("{\n");
        for (i, (k, v)) in entries.iter().enumerate() {
            let comma = if i + 1 == entries.len() { "" } else { "," };
            s.push_str(&format!("  \"{k}\": {v:.1}{comma}\n"));
        }
        s.push_str("}\n");
        s
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trips() {
            let entries =
                vec![("a/b".to_owned(), 123.5), ("c d".to_owned(), 0.5), ("e".to_owned(), 7.0)];
            let text = write_flat_object(&entries);
            assert_eq!(parse_flat_object(&text), entries);
        }

        #[test]
        fn tolerates_garbage() {
            assert!(parse_flat_object("not json at all").is_empty());
            assert!(parse_flat_object("{\"unterminated: 3").is_empty());
            assert_eq!(parse_flat_object("{\"ok\": 1, \"bad\": x}"), vec![("ok".to_owned(), 1.0)]);
        }

        #[test]
        fn keys_may_contain_commas() {
            let entries = vec![("a,b".to_owned(), 2.0)];
            let text = write_flat_object(&entries);
            assert_eq!(parse_flat_object(&text), entries);
        }
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main` running the listed groups (ignores CLI args such
/// as the `--bench` cargo passes to harness-less bench binaries).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
