//! A small, self-contained stand-in for the `criterion` crate.
//!
//! The build environment for this repository has no crates.io access,
//! so the workspace vendors the slice of criterion its benches use:
//! [`Criterion`], [`BenchmarkId`], benchmark groups with
//! `bench_function` / `bench_with_input`, `Bencher::iter`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — warm up, then time batches
//! until a wall-clock budget is spent, and report the per-iteration
//! mean and min — but the reported numbers are real and the API is
//! call-compatible, so benches keep compiling (and `cargo bench`
//! keeps producing usable relative numbers) until the real harness
//! can be dropped in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function_name.into()) }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times a closure over repeated iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    total: Duration,
    min: Option<Duration>,
}

impl Bencher {
    /// Run `routine` repeatedly and record per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes caches/allocator), untimed.
        for _ in 0..3 {
            black_box(routine());
        }
        let budget = Duration::from_millis(200);
        let started = Instant::now();
        while started.elapsed() < budget {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            self.iters += 1;
            self.total += dt;
            self.min = Some(self.min.map_or(dt, |m| m.min(dt)));
            if self.iters >= 10_000 {
                break;
            }
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn run_one(&mut self, id: &str, run: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher::default();
        run(&mut b);
        let full = format!("{}/{id}", self.name);
        if b.iters == 0 {
            println!("{full:<48} (no iterations recorded)");
            return;
        }
        let mean = b.total / u32::try_from(b.iters).unwrap_or(u32::MAX);
        let min = b.min.unwrap_or_default();
        println!("{full:<48} iters {:>6}   mean {mean:>12.2?}   min {min:>12.2?}", b.iters);
    }

    /// Benchmark `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.id, |b| routine(b));
        self
    }

    /// Benchmark `routine` under `id`, passing it `input` by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id, |b| routine(b, input));
        self
    }

    /// Finish the group (flushes nothing here; kept for API parity).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name}");
        BenchmarkGroup { name, _criterion: self }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup { name: "bench".to_owned(), _criterion: self };
        g.bench_function(id, routine);
        self
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main` running the listed groups (ignores CLI args such
/// as the `--bench` cargo passes to harness-less bench binaries).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
