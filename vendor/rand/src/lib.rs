//! A small, self-contained stand-in for the `rand` crate.
//!
//! The build environment for this repository has no crates.io access,
//! so the workspace vendors the exact API surface its sources use:
//!
//! * [`Rng`] — the core trait, a raw `u64` generator,
//! * [`RngExt`] — ergonomic sampling (`random`, `random_range`,
//!   `random_bool`), blanket-implemented for every [`Rng`],
//! * [`SeedableRng`] — deterministic construction from a `u64` seed,
//! * [`rngs::StdRng`] — xoshiro256++ seeded through SplitMix64.
//!
//! The generator is a faithful xoshiro256++ implementation, so the
//! Monte-Carlo statistical tests in `dpsan-dp` (moments, tails,
//! empirical (ε, δ) verification) hold to the same tolerances they
//! would with the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random `u64`s.
pub trait Rng {
    /// The next raw 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32 uniformly random bits (upper half of
    /// [`Rng::next_u64`], which has the better-mixed bits).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (unit interval
/// for floats) by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over a caller-provided range, used by
/// [`RngExt::random_range`].
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from the half-open interval `[low, high)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from the closed interval `[low, high]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Draw a `u64` uniformly from `[0, span)` by multiply-shift with
/// rejection (Lemire's method), bias-free for every span.
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = x as u128 * span as u128;
        let lo = m as u64;
        if lo >= span {
            return (m >> 64) as u64;
        }
        // Accept unless x falls in the biased low fringe.
        let threshold = span.wrapping_neg() % span;
        if lo >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                low + uniform_u64_below(rng, (high - low) as u64) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "random_range: empty range");
                let span = high - low;
                if span == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                low + uniform_u64_below(rng, span as u64 + 1) as $t
            }
        }
    )*}
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let span = high.wrapping_sub(low) as $u as u64;
                low.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "random_range: empty range");
                let span = high.wrapping_sub(low) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*}
}
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "random_range: empty range");
        let u = f64::from_rng(rng);
        let v = low + (high - low) * u;
        // Guard against round-up to the open bound.
        if v < high {
            v
        } else {
            low
        }
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "random_range: empty range");
        low + (high - low) * f64::from_rng(rng)
    }
}

/// Range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from this range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Ergonomic sampling helpers, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Draw one value of `T` from its standard distribution (uniform
    /// bits for integers, uniform `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draw uniformly from `range` (half-open `a..b` or inclusive `a..=b`).
    fn random_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// A biased coin: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p must be in [0, 1]");
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded through SplitMix64. Deterministic for a given
    /// seed, 2^256 − 1 period, passes BigCrush.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_uniform_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_draws_stay_in_range_and_cover() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let k = rng.random_range(0usize..10);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let k = rng.random_range(3u64..=5);
            assert!((3..=5).contains(&k));
        }
        for _ in 0..1_000 {
            let x = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw<R: Rng>(mut rng: R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let direct = draw(StdRng::seed_from_u64(5));
        assert_eq!(draw(&mut rng), direct);
    }
}
