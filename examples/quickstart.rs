//! Quickstart: sanitize a small search log end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dpsan::prelude::*;

fn main() {
    // Build a toy search log. The "pregnancy test nyc" pair belongs to a
    // single user — exactly the kind of tuple the mechanism must drop.
    let mut b = SearchLogBuilder::new();
    for k in 0..12 {
        b.add(&format!("{:03}", k), "google", "google.com", 4).unwrap();
        if k % 2 == 0 {
            b.add(&format!("{:03}", k), "weather", "weather.com", 2).unwrap();
        }
        if k % 3 == 0 {
            b.add(&format!("{:03}", k), "car price", "kbb.com", 3).unwrap();
        }
    }
    b.add("001", "pregnancy test nyc", "medicinenet.com", 2).unwrap();
    let input = b.build();
    println!("input:  {}", LogStats::of(&input));

    // (ε, δ)-probabilistic differential privacy with e^ε = 2, δ = 0.5.
    let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
    println!(
        "privacy: ε = {:.4}, δ = {}, per-user budget B = {}",
        params.epsilon(),
        params.delta(),
        params.budget()
    );

    // Algorithm 1 with the output-size objective (O-UMP).
    let mechanism = UmpSanitizer::new(UtilityObjective::OutputSize);
    let result = mechanism.sanitize(&input, params, 7).expect("sanitization succeeds");

    println!(
        "preprocessing removed {} unique pair(s) carrying {} click(s)",
        result.report.removed_pairs, result.report.removed_count
    );
    println!("output: {}", LogStats::of(&result.output));
    println!();
    println!("sanitized tuples (identical schema as the input):");
    println!("{:<6} {:<22} {:<22} count", "user", "query", "url");
    for r in result.output.records() {
        println!(
            "{:<6} {:<22} {:<22} {}",
            result.output.users().resolve(r.user.0),
            result.output.queries().resolve(r.query.0),
            result.output.urls().resolve(r.url.0),
            r.count
        );
    }
    println!();
    println!("{}", result.ledger);
}
