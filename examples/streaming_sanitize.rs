//! Streaming sanitize: the bounded-memory ingestion path end to end.
//!
//! ```sh
//! cargo run --example streaming_sanitize
//! ```
//!
//! Spools a generated log to TSV bytes (one user's aggregation in
//! memory at a time), ingests it through the sharded `dpsan-stream`
//! engine (chunked intake, user-hash shards, heavy-hitter sketch),
//! mines the F-UMP frequent pairs from the sketch, and sanitizes —
//! then proves the streamed log and its sanitized output are identical
//! to the all-in-memory path.

use std::io::Cursor;

use dpsan::prelude::*;
use dpsan::searchlog::io::read_tsv;

fn main() {
    // a tiny AOL-like log, spooled to TSV "on disk" (here: a buffer)
    let cfg = AolLikeConfig { n_users: 80, mean_events_per_user: 25.0, ..presets::aol_tiny() };
    let mut file = Vec::new();
    dpsan::datagen::write_log_tsv(&cfg, &mut file).expect("spool the generated log");
    println!("spooled {} bytes of TSV", file.len());

    // bounded-memory ingestion: 8 user-hash shards, ≤512 raw rows
    // resident, a 256-counter Misra–Gries sketch per shard
    let stream_cfg = StreamConfig { shards: 8, chunk_rows: 512, sketch_capacity: 256, jobs: 2 };
    let ingest = ingest_tsv(Cursor::new(&file[..]), &stream_cfg).expect("ingest the log");
    println!(
        "ingested {} rows (peak {} raw rows resident, largest shard {} triplets)",
        ingest.report.rows, ingest.report.peak_chunk_rows, ingest.report.max_shard_triplets
    );

    // the streamed log is *identical* to the one-shot in-memory build
    let reference = read_tsv(Cursor::new(&file[..])).expect("one-shot build");
    assert_eq!(
        ingest.log.records().collect::<Vec<_>>(),
        reference.records().collect::<Vec<_>>(),
        "streamed and in-memory logs agree, ids and all"
    );

    // mine F-UMP frequent pairs from the sketch (exactified against
    // the preprocessed log — equals the exact scan, bound or no bound)
    let (pre, _) = preprocess(&ingest.log);
    let sketch = ingest.sketch.expect("sketching enabled");
    println!(
        "sketch: {} counters, error bound {} (N/(k+1) = {})",
        sketch.len(),
        sketch.error_bound(),
        sketch.total_weight() / (sketch.capacity() as u64 + 1)
    );
    let min_support = 0.01;
    let frequent = sketch_frequent_pairs(&pre, &sketch, min_support);
    assert_eq!(frequent, frequent_pairs(&pre, min_support), "sketch mining is exact");
    println!("{} frequent pairs at support {min_support}", frequent.len());

    // sanitize with the sketch-mined set
    let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
    let output_size = (pre.size() / 20).max(1);
    let mechanism = UmpSanitizer::new(UtilityObjective::SketchedFrequentPairs {
        frequent,
        min_support,
        output_size,
    });
    let result = mechanism.sanitize(&pre, params, 7).expect("sanitization succeeds");
    println!(
        "sanitized: |O| = {} over {} pairs (input size {})",
        result.output.size(),
        result.output.n_pairs(),
        pre.size()
    );
    println!("{}", result.ledger);
}
