//! Auditing the privacy guarantee on a tiny log.
//!
//! For small inputs everything in the paper's Section 4 can be computed
//! *exactly*: the per-user Theorem 1 conditions, the Eq. 2 probability
//! of sampling a user, an exhaustive enumeration of the output space
//! checking Definition 2 against every neighbor, and the Proposition 1
//! (indistinguishability) excess. This example runs the full audit.
//!
//! ```sh
//! cargo run --release --example privacy_audit
//! ```

use dpsan::core::theory::{
    exhaustive_neighbor_check, indistinguishability_excess, output_space_size, pr_user_sampled,
    theorem1_report,
};
use dpsan::core::ump::output_size::{solve_oump, OumpOptions};
use dpsan::prelude::*;

fn main() {
    // a deliberately tiny log so the output space stays enumerable;
    // each pair is spread over four holders so small positive counts
    // are feasible and the audit exercises non-trivial distributions
    let mut b = SearchLogBuilder::new();
    for user in ["alice", "bob", "carol", "dave"] {
        b.add(user, "q0", "q0.com", 2).unwrap();
    }
    for user in ["alice", "bob", "carol"] {
        b.add(user, "q1", "q1.com", 1).unwrap();
    }
    let (log, _) = preprocess(&b.build());

    let params = PrivacyParams::from_e_epsilon(3.0, 0.8);
    let sol = solve_oump(&log, params, &OumpOptions::default()).expect("solvable");
    println!("optimal counts: {:?} (λ = {})", sol.counts, sol.lambda);

    // Theorem 1, evaluated exactly
    let rep = theorem1_report(&log, &sol.counts, params);
    println!("\nTheorem 1 at the released counts:");
    println!("  condition 1 (no unique pairs kept):  {}", rep.condition1_ok);
    println!(
        "  condition 2 (worst Σ x·ln t = {:.4} ≤ ε = {:.4}):  {}",
        rep.worst_log_ratio,
        params.epsilon(),
        rep.condition2_ok
    );
    println!(
        "  condition 3 (worst Pr[user sampled] = {:.4} ≤ δ = {}):  {}",
        rep.worst_delta_mass,
        params.delta(),
        rep.condition3_ok
    );

    // exhaustive Definition 2 check against every neighbor D' = D - A_k
    println!(
        "\nexhaustive neighbor checks (output space: {} outputs):",
        output_space_size(&log, &sol.counts)
    );
    for user in log.users_with_logs() {
        let name = log.users().resolve(user.0);
        let eq2 = pr_user_sampled(&log, &sol.counts, user);
        let check = exhaustive_neighbor_check(&log, &sol.counts, user, 1_000_000);
        let prop1 =
            indistinguishability_excess(&log, &sol.counts, user, params.epsilon(), 1_000_000);
        println!(
            "  vs D - A_{name}: Pr[{name} sampled] = {:.4} (Eq.2 {:.4}), \
             worst Ω₂ |ln ratio| = {:.4}, Prop.1 excess = {:.6}",
            check.delta_mass, eq2, check.max_log_ratio, prop1
        );
        assert!(check.satisfies(params.epsilon(), params.delta()));
        assert!(prop1 <= params.delta() + 1e-9);
    }
    println!("\nall neighbors satisfy (ε, δ)-probabilistic differential privacy ✓");
}
