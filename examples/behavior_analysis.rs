//! Per-user behaviour analysis on sanitized logs (schema preservation).
//!
//! The paper's headline property: unlike Korolova et al. / Götz et al.,
//! the output *retains user-IDs*, so analyses that need the association
//! between queries of the same user — session studies, behaviour
//! research — run unchanged on the sanitized log. This example runs the
//! diversity objective (D-UMP/SPE) and compares per-user statistics
//! before and after.
//!
//! ```sh
//! cargo run --release --example behavior_analysis
//! ```

use dpsan::core::metrics::diversity_retained;
use dpsan::prelude::*;

/// A toy "behaviour analysis": distribution of distinct pairs per user.
fn pairs_per_user_histogram(log: &SearchLog) -> Vec<(usize, usize)> {
    let mut hist = std::collections::BTreeMap::new();
    for user in log.users_with_logs() {
        *hist.entry(log.user_log_len(user)).or_insert(0usize) += 1;
    }
    hist.into_iter().collect()
}

fn main() {
    let input = generate(&presets::aol_tiny());
    let params = PrivacyParams::from_e_epsilon(2.0, 0.8);

    let mechanism = UmpSanitizer::new(UtilityObjective::Diversity { solver: DumpSolver::Spe });
    let result = mechanism.sanitize(&input, params, 7).expect("sanitization succeeds");

    println!("input (preprocessed): {}", LogStats::of(&result.reference));
    println!("sanitized output:     {}", LogStats::of(&result.output));
    println!("pair diversity retained: {:.1}%", 100.0 * diversity_retained(&result.counts));

    println!("\ndistinct pairs per user (input -> output):");
    let before = pairs_per_user_histogram(&result.reference);
    let after = pairs_per_user_histogram(&result.output);
    println!("  input : {before:?}");
    println!("  output: {after:?}");

    // the analysis the aggregate-release mechanisms cannot do: follow
    // one user's (sanitized) footprint across queries
    if let Some(user) = result.output.users_with_logs().next() {
        println!(
            "\nsanitized footprint of pseudonymous user {}:",
            result.output.users().resolve(user.0)
        );
        for e in result.output.user_log(user) {
            let (q, u) = result.output.pair_key(e.pair);
            println!(
                "  {:<20} -> {:<26} x{}",
                result.output.queries().resolve(q.0),
                result.output.urls().resolve(u.0),
                e.count
            );
        }
    }
    println!(
        "\n(every sampled user-ID held the pair in the input; the association \
         between a user's queries survives sanitization)"
    );
}
