//! Query recommendation on sanitized logs (the F-UMP use case).
//!
//! The paper motivates frequent-pair preservation with applications
//! like query suggestion: a recommender mines frequent query–url pairs,
//! so the sanitizer should keep their supports intact. This example
//! sanitizes a synthetic log with the F-UMP objective and compares the
//! frequent pairs mined from input and output.
//!
//! ```sh
//! cargo run --release --example query_recommendation
//! ```

use dpsan::core::metrics::precision_recall;
use dpsan::core::ump::output_size::{solve_oump, OumpOptions};
use dpsan::prelude::*;

fn main() {
    let input = generate(&presets::aol_small());
    let (pre, _) = preprocess(&input);
    println!("preprocessed input: {}", LogStats::of(&pre));

    let params = PrivacyParams::from_e_epsilon(2.3, 0.9);

    // learn the feasible output-size ceiling λ and use most of it
    let lambda =
        solve_oump(&pre, params, &OumpOptions::default()).expect("O-UMP always solvable").lambda;
    let output_size = (lambda * 9 / 10).max(1);
    println!("λ = {lambda}; requesting |O| = {output_size}");

    // pick a support level that marks the very head of the distribution
    let min_support = {
        let mut counts: Vec<u64> = pre.pairs().map(|p| p.total).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let k = (counts.len() / 400).max(1); // the very head (top 0.25 %)
        counts[k - 1] as f64 / pre.size() as f64
    };

    let mechanism = UmpSanitizer::new(UtilityObjective::FrequentPairs { min_support, output_size });
    let result = mechanism.sanitize(&input, params, 7).expect("sanitization succeeds");

    // mine "recommendations" (frequent pairs) from both sides
    let input_top = frequent_pairs(&result.reference, min_support);
    println!("\nfrequent query-url pairs in the input (support >= {min_support:.4}):");
    for f in input_top.iter().take(8) {
        let (q, u) = result.reference.pair_key(f.pair);
        println!(
            "  {:<18} -> {:<24} support {:.4}",
            result.reference.queries().resolve(q.0),
            result.reference.urls().resolve(u.0),
            f.support
        );
    }

    let out_top = frequent_pairs(&result.output, min_support);
    println!("\nfrequent pairs in the sanitized output:");
    for f in out_top.iter().take(8) {
        let (q, u) = result.output.pair_key(f.pair);
        println!(
            "  {:<18} -> {:<24} support {:.4}",
            result.output.queries().resolve(q.0),
            result.output.urls().resolve(u.0),
            f.support
        );
    }

    let pr = precision_recall(&result.reference, &result.counts, min_support);
    println!(
        "\nfrequent-pair precision = {:.3}, recall = {:.3} ({} input-frequent pairs)",
        pr.precision, pr.recall, pr.input_frequent
    );
    println!(
        "a recommender trained on the sanitized log sees {} of the {} head pairs",
        (pr.recall * pr.input_frequent as f64).round() as u64,
        pr.input_frequent
    );
}
