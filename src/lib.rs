//! # dpsan — Differentially Private Search Log Sanitization with Optimal Output Utility
//!
//! A from-scratch Rust reproduction of Hong, Vaidya, Lu, Wu (EDBT 2012):
//! utility-maximizing, `(ε, δ)`-probabilistically differentially private
//! search-log sanitization whose output has the *identical schema* as
//! the input (user-IDs preserved via multinomial sampling).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`searchlog`] — the search-log data model (histograms,
//!   preprocessing, AOL io),
//! * [`dp`] — differential-privacy primitives (parameters, Laplace,
//!   multinomial sampling, verification),
//! * [`lp`] — the LP/MIP solver substrate (revised simplex, branch &
//!   bound),
//! * [`core`] — the sanitization mechanisms (the [`Sanitizer`]
//!   trait with UMP / ZEALOUS / local-randomized-response impls,
//!   constraints, the three UMPs, sampling, metrics, closed-form
//!   privacy checks),
//!
//! [`Sanitizer`]: prelude::Sanitizer
//! * [`datagen`] — synthetic AOL-like log generation,
//! * [`stream`] — bounded-memory sharded ingestion (chunked intake,
//!   user-hash shards, mergeable heavy-hitter sketches),
//! * [`serve`] — the always-on sanitization service (file tailing,
//!   incremental ingest sessions, trigger-driven re-release, the
//!   enforced cross-release budget ledger),
//! * [`store`] — durable crash-safe persistence (checksummed shard
//!   snapshots, WAL-backed resumable ingest, the chained
//!   release-manifest ledger that makes budgets survive restarts),
//! * [`obs`] — the telemetry substrate (process-wide metrics registry,
//!   exact-quantile latency histograms, Prometheus/JSON exporters,
//!   filtered span tracing) every layer above reports into,
//! * [`eval`] — the table/figure reproduction harness and the
//!   `sanitize` / `genlog` / `repro` binaries.
//!
//! ## Quickstart
//!
//! ```
//! use dpsan::prelude::*;
//!
//! // a toy input log: (user, query, url, count) tuples
//! let mut b = SearchLogBuilder::new();
//! for k in 0..8 {
//!     b.add(&format!("u{k}"), "rust lang", "rust-lang.org", 3).unwrap();
//!     b.add(&format!("u{k}"), "weather", "weather.com", 2).unwrap();
//! }
//! b.add("u0", "my private query", "example.org", 5).unwrap();
//! let input = b.build();
//!
//! // sanitize with the output-size objective at (ε, δ) = (ln 2, 0.5)
//! let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
//! let mechanism = UmpSanitizer::new(UtilityObjective::OutputSize);
//! let release = mechanism.sanitize(&input, params, 7).unwrap();
//!
//! // the unique pair is gone; the output keeps the input schema
//! assert_eq!(release.report.removed_pairs, 1);
//! for record in release.output.records() {
//!     assert!(record.count > 0);
//! }
//!
//! // rival mechanisms implement the same trait and are scored on the
//! // same released-counts frame
//! let zealous = ZealousSanitizer::new().sanitize(&input, params, 7).unwrap();
//! let score = metrics::mechanism_score(&zealous.reference, &zealous.counts, 0.05);
//! assert!(score.precision >= 0.0 && score.recall <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dpsan_core as core;
pub use dpsan_datagen as datagen;
pub use dpsan_dp as dp;
pub use dpsan_eval as eval;
pub use dpsan_lp as lp;
pub use dpsan_obs as obs;
pub use dpsan_searchlog as searchlog;
pub use dpsan_serve as serve;
pub use dpsan_store as store;
pub use dpsan_stream as stream;

/// The most common imports in one place.
pub mod prelude {
    pub use dpsan_core::mechanism::{
        LaplaceStep, LdpOptions, LdpSanitizer, MechanismInfo, PrivacyModel, Release,
        ReleasePlanner, Sanitizer, TriggerPolicy, UmpSanitizer, UtilityObjective, ZealousOptions,
        ZealousSanitizer,
    };
    pub use dpsan_core::metrics;
    pub use dpsan_core::metrics::{mechanism_score, MechanismScore, PrecisionRecall};
    pub use dpsan_core::ump::diversity::DumpSolver;
    pub use dpsan_core::PrivacyConstraints;
    pub use dpsan_datagen::{generate, presets, write_log_file, AolLikeConfig};
    pub use dpsan_dp::composition::{BudgetEntry, BudgetError, BudgetLedger};
    pub use dpsan_dp::params::PrivacyParams;
    pub use dpsan_searchlog::{frequent_pairs, preprocess, LogStats, SearchLog, SearchLogBuilder};
    pub use dpsan_serve::{serve, FollowReader, ServeOptions, ServeReport, ServeSession};
    pub use dpsan_store::{DurableStore, RecoveryReport, StoreConfig, StoreError};
    pub use dpsan_stream::{
        ingest_path, ingest_tsv, sketch_frequent_pairs, IngestSession, StreamConfig,
    };
}
