//! Crash-recovery equivalence, end to end through the facade: a
//! durable daemon killed mid-ingest (at several different points in
//! its write stream), restarted, caught up on its input, and asked to
//! release produces output **byte-identical** to a one-shot `sanitize`
//! over the same full window with the same seed — and its rebuilt
//! ledger accounts for every release the doomed run durably recorded.
//!
//! This is the repo's headline durability claim: the WAL-first /
//! manifest-first discipline plus deterministic replay means a crash
//! can cost wall-clock and waste budget, but can never change released
//! bytes or shrink the spent-budget record.

use std::io::Cursor;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::{fs, process};

use dpsan::prelude::*;
use dpsan::searchlog::io::{read_tsv, write_tsv};
use dpsan::store::{DiskIo, FaultIo, StoreIo};

const SEED: u64 = 0xd95a_11ce;

fn params() -> PrivacyParams {
    PrivacyParams::from_e_epsilon(2.0, 0.5)
}

fn stream_cfg() -> StreamConfig {
    StreamConfig { shards: 3, chunk_rows: 64, sketch_capacity: 0, jobs: 1 }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dpsan-crash-recovery-{tag}-{}", process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The full input trace, split into chunks of whole lines.
fn trace() -> (String, Vec<String>) {
    let cfg = AolLikeConfig {
        n_users: 40,
        n_queries: 60,
        mean_events_per_user: 12.0,
        ..Default::default()
    };
    let mut tsv = Vec::new();
    dpsan::datagen::write_log_tsv(&cfg, &mut tsv).unwrap();
    let text = String::from_utf8(tsv).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let per = lines.len().div_ceil(6);
    let chunks = lines.chunks(per).map(|c| c.join("\n") + "\n").collect();
    (text, chunks)
}

fn one_shot(window: &str) -> Vec<u8> {
    let log = read_tsv(Cursor::new(window)).unwrap();
    let release =
        UmpSanitizer::new(UtilityObjective::OutputSize).sanitize(&log, params(), SEED).unwrap();
    let mut bytes = Vec::new();
    write_tsv(&release.output, &mut bytes).unwrap();
    bytes
}

/// The doomed run: feed chunks WAL-first, checkpoint every second
/// chunk, release once midway — under an IO layer that dies at a
/// chosen byte. Returns how many bytes the run wrote before stopping.
fn doomed_run(io: Arc<FaultIo>, dir: &Path, chunks: &[String]) -> u64 {
    let open = DurableStore::open(
        io.clone() as Arc<dyn StoreIo>,
        StoreConfig { dir: dir.to_path_buf(), checkpoint_rows: 0 },
    );
    let Ok((mut store, recovered)) = open else {
        return io.written();
    };
    let mut session = ServeSession::new(
        Box::new(UmpSanitizer::new(UtilityObjective::OutputSize)),
        stream_cfg(),
        params(),
        SEED,
        TriggerPolicy::manual(),
        None,
    );
    let _ = recovered; // doomed runs always start on a fresh directory
    let mut offset = 0u64;
    for (i, chunk) in chunks.iter().enumerate() {
        offset += chunk.len() as u64;
        if store.log_chunk(offset, chunk.as_bytes()).is_err() {
            return io.written();
        }
        session.feed(chunk.as_bytes()).unwrap();
        if (i + 1) % 2 == 0 && store.checkpoint(&session.ingest_state(), offset).is_err() {
            return io.written();
        }
        if i == 2 {
            // one mid-stream release, with the production manifest-first
            // ordering
            let before = session.ledger().entries().len();
            let release = session.release_now().unwrap();
            let mut bytes = Vec::new();
            write_tsv(&release.output, &mut bytes).unwrap();
            let spent = session.ledger().entries()[before..].to_vec();
            if store.record_release(&spent, session.rows(), &bytes).is_err() {
                return io.written();
            }
        }
    }
    io.written()
}

/// Restart over the damaged directory: recover, catch up on the input
/// the WAL never saw, release the full window. Returns the released
/// bytes, the recovered manifest count, and the final ledger total ε.
fn recover_catch_up_and_release(dir: &Path, text: &str) -> (Vec<u8>, usize, f64) {
    let (mut store, recovered) = DurableStore::open(
        Arc::new(DiskIo),
        StoreConfig { dir: dir.to_path_buf(), checkpoint_rows: 0 },
    )
    .expect("a crash must never leave an unrecoverable store");
    let ingest = recovered.resume_session(stream_cfg()).expect("recovered state must restore");
    let ledger = dpsan::store::rebuild_ledger(&recovered.manifests, None);
    let released_rows = recovered.manifests.last().map_or(0, |m| m.rows);
    let manifests = recovered.manifests.len();
    let mut session = ServeSession::restore(
        Box::new(UmpSanitizer::new(UtilityObjective::OutputSize)),
        ingest,
        params(),
        SEED,
        TriggerPolicy::manual(),
        ledger,
        manifests as u64,
        released_rows,
    );

    // catch up: re-read the input from the recovered resume offset —
    // the WAL-first discipline guarantees it sits on a line boundary
    let resume = recovered.input_offset as usize;
    assert!(resume <= text.len());
    assert!(resume == 0 || text.as_bytes()[resume - 1] == b'\n', "resume offset mid-line");
    let remainder = &text[resume..];
    let mut offset = recovered.input_offset;
    if !remainder.is_empty() {
        offset += remainder.len() as u64;
        store.log_chunk(offset, remainder.as_bytes()).unwrap();
        session.feed(remainder.as_bytes()).unwrap();
    }

    let before = session.ledger().entries().len();
    let release = session.release_now().unwrap();
    let mut bytes = Vec::new();
    write_tsv(&release.output, &mut bytes).unwrap();
    let spent = session.ledger().entries()[before..].to_vec();
    store.record_release(&spent, session.rows(), &bytes).unwrap();
    (bytes, manifests, session.ledger().total_epsilon())
}

#[test]
fn recovered_release_is_byte_identical_to_one_shot() {
    let (text, chunks) = trace();
    let reference = one_shot(&text);
    let per_eps = params().epsilon();

    // measure the uninterrupted run's write volume, then kill at three
    // qualitatively different points: early ingest, around the
    // mid-stream release, and late
    let measure_dir = tmpdir("measure");
    let total = doomed_run(Arc::new(FaultIo::new(u64::MAX)), &measure_dir, &chunks);
    fs::remove_dir_all(&measure_dir).unwrap();
    assert!(total > 0);

    for (tag, kill) in [("early", total / 4), ("mid", total / 2), ("late", total * 3 / 4)] {
        let dir = tmpdir(tag);
        doomed_run(Arc::new(FaultIo::new(kill)), &dir, &chunks);
        let (bytes, manifests, total_eps) = recover_catch_up_and_release(&dir, &text);
        assert_eq!(
            bytes, reference,
            "kill at {kill}/{total} bytes ({tag}): recovered release diverged from one-shot"
        );
        // ledger: every durably recorded release plus the final one
        let want = per_eps * (manifests as f64 + 1.0);
        assert!(
            (total_eps - want).abs() < 1e-9,
            "kill at {kill} ({tag}): ledger ε {total_eps} != {want} ({manifests} recovered)"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn clean_restart_releases_identically_with_no_replay() {
    // The no-crash baseline: a clean shutdown (final checkpoint), then
    // a restart — recovery replays nothing and the next release over
    // appended data still matches the one-shot.
    let (text, chunks) = trace();
    let dir = tmpdir("clean");
    let (mut store, recovered) = DurableStore::open(
        Arc::new(DiskIo),
        StoreConfig { dir: dir.to_path_buf(), checkpoint_rows: 0 },
    )
    .unwrap();
    let mut session = ServeSession::new(
        Box::new(UmpSanitizer::new(UtilityObjective::OutputSize)),
        stream_cfg(),
        params(),
        SEED,
        TriggerPolicy::manual(),
        None,
    );
    drop(recovered);
    let mut offset = 0u64;
    for chunk in &chunks[..4] {
        offset += chunk.len() as u64;
        store.log_chunk(offset, chunk.as_bytes()).unwrap();
        session.feed(chunk.as_bytes()).unwrap();
    }
    store.checkpoint(&session.ingest_state(), offset).unwrap();
    drop(store);
    drop(session);

    let (_, recovered) = DurableStore::open(
        Arc::new(DiskIo),
        StoreConfig { dir: dir.to_path_buf(), checkpoint_rows: 0 },
    )
    .unwrap();
    assert_eq!(recovered.report.replayed_records, 0, "clean shutdown leaves nothing to replay");
    assert_eq!(recovered.report.truncated_bytes, 0);
    let (bytes, _, _) = recover_catch_up_and_release(&dir, &text);
    assert_eq!(bytes, one_shot(&text));
    fs::remove_dir_all(&dir).unwrap();
}
