//! Property-based integration tests of the privacy guarantees on random
//! tiny logs: the released counts of every objective satisfy Theorem 1,
//! and exhaustive Definition 2 checks pass for every neighbor.

use dpsan::core::theory::{exhaustive_neighbor_check, output_space_size, theorem1_report};
use dpsan::core::ump::diversity::{solve_dump, DumpOptions};
use dpsan::core::ump::output_size::{solve_oump, OumpOptions};
use dpsan::prelude::*;
use proptest::prelude::*;

/// A random preprocessed log: `n_pairs` pairs over `n_users` users,
/// every pair held by 2–3 users with counts 1–4.
fn random_log(n_users: usize, pairs: Vec<(u8, u8, u8, u8)>) -> SearchLog {
    let mut b = SearchLogBuilder::new();
    for (i, &(u1, u2, c1, c2)) in pairs.iter().enumerate() {
        let a = u1 as usize % n_users;
        let mut bidx = u2 as usize % n_users;
        if bidx == a {
            bidx = (bidx + 1) % n_users;
        }
        b.add(&format!("u{a}"), &format!("q{i}"), &format!("q{i}.com"), 1 + (c1 % 4) as u64)
            .unwrap();
        b.add(&format!("u{bidx}"), &format!("q{i}"), &format!("q{i}.com"), 1 + (c2 % 4) as u64)
            .unwrap();
    }
    let (log, _) = preprocess(&b.build());
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn oump_counts_always_satisfy_theorem1(
        pairs in prop::collection::vec((0u8..5, 0u8..5, 0u8..4, 0u8..4), 2..6),
        e_eps in 1.05f64..3.0,
        delta in 0.05f64..0.9,
    ) {
        let log = random_log(5, pairs);
        prop_assume!(log.n_pairs() > 0);
        let params = PrivacyParams::from_e_epsilon(e_eps, delta);
        let sol = solve_oump(&log, params, &OumpOptions::default()).unwrap();
        let rep = theorem1_report(&log, &sol.counts, params);
        prop_assert!(rep.ok(), "{rep:?}");
    }

    #[test]
    fn dump_counts_always_satisfy_theorem1(
        pairs in prop::collection::vec((0u8..5, 0u8..5, 0u8..4, 0u8..4), 2..6),
        e_eps in 1.05f64..3.0,
        delta in 0.05f64..0.9,
    ) {
        let log = random_log(5, pairs);
        prop_assume!(log.n_pairs() > 0);
        let params = PrivacyParams::from_e_epsilon(e_eps, delta);
        let sol = solve_dump(&log, params, &DumpOptions::default()).unwrap();
        let rep = theorem1_report(&log, &sol.counts, params);
        prop_assert!(rep.ok(), "{rep:?}");
    }

    #[test]
    fn exhaustive_definition2_holds_for_every_neighbor(
        pairs in prop::collection::vec((0u8..4, 0u8..4, 0u8..3, 0u8..3), 2..4),
        e_eps in 1.2f64..2.5,
        delta in 0.1f64..0.8,
    ) {
        let log = random_log(4, pairs);
        prop_assume!(log.n_pairs() > 0);
        let params = PrivacyParams::from_e_epsilon(e_eps, delta);
        let sol = solve_oump(&log, params, &OumpOptions::default()).unwrap();
        prop_assume!(output_space_size(&log, &sol.counts) <= 60_000.0);
        for user in log.users_with_logs() {
            let check = exhaustive_neighbor_check(&log, &sol.counts, user, 80_000);
            prop_assert!(
                check.satisfies(params.epsilon(), params.delta()),
                "user {user}: {check:?} vs (ε={}, δ={})", params.epsilon(), params.delta()
            );
        }
    }

    #[test]
    fn full_pipeline_never_releases_infeasible_counts(
        pairs in prop::collection::vec((0u8..6, 0u8..6, 0u8..4, 0u8..4), 2..7),
        e_eps in 1.05f64..3.0,
        delta in 0.05f64..0.9,
        seed in 0u64..1000,
    ) {
        let log = random_log(6, pairs);
        prop_assume!(log.n_pairs() > 0);
        let params = PrivacyParams::from_e_epsilon(e_eps, delta);
        let mut cfg = SanitizerConfig::new(params, UtilityObjective::OutputSize);
        cfg.seed = seed;
        let result = Sanitizer::new(cfg).sanitize(&log).unwrap();
        let c = PrivacyConstraints::build(&result.preprocessed, params).unwrap();
        prop_assert!(c.satisfied_by(&result.counts, 1e-9));
    }
}
