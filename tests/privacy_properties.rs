//! Property-based integration tests of the privacy guarantees on random
//! tiny logs: the released counts of every objective satisfy Theorem 1,
//! and exhaustive Definition 2 checks pass for every neighbor.

use dpsan::core::mechanism::zealous_plan;
use dpsan::core::theory::{exhaustive_neighbor_check, output_space_size, theorem1_report};
use dpsan::core::ump::diversity::{solve_dump, DumpOptions};
use dpsan::core::ump::output_size::{solve_oump, OumpOptions};
use dpsan::dp::threshold::{release_probability, tail_margin};
use dpsan::prelude::*;
use proptest::prelude::*;

/// A random preprocessed log: `n_pairs` pairs over `n_users` users,
/// every pair held by 2–3 users with counts 1–4.
fn random_log(n_users: usize, pairs: Vec<(u8, u8, u8, u8)>) -> SearchLog {
    let mut b = SearchLogBuilder::new();
    for (i, &(u1, u2, c1, c2)) in pairs.iter().enumerate() {
        let a = u1 as usize % n_users;
        let mut bidx = u2 as usize % n_users;
        if bidx == a {
            bidx = (bidx + 1) % n_users;
        }
        b.add(&format!("u{a}"), &format!("q{i}"), &format!("q{i}.com"), 1 + (c1 % 4) as u64)
            .unwrap();
        b.add(&format!("u{bidx}"), &format!("q{i}"), &format!("q{i}.com"), 1 + (c2 % 4) as u64)
            .unwrap();
    }
    let (log, _) = preprocess(&b.build());
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn oump_counts_always_satisfy_theorem1(
        pairs in prop::collection::vec((0u8..5, 0u8..5, 0u8..4, 0u8..4), 2..6),
        e_eps in 1.05f64..3.0,
        delta in 0.05f64..0.9,
    ) {
        let log = random_log(5, pairs);
        prop_assume!(log.n_pairs() > 0);
        let params = PrivacyParams::from_e_epsilon(e_eps, delta);
        let sol = solve_oump(&log, params, &OumpOptions::default()).unwrap();
        let rep = theorem1_report(&log, &sol.counts, params);
        prop_assert!(rep.ok(), "{rep:?}");
    }

    #[test]
    fn dump_counts_always_satisfy_theorem1(
        pairs in prop::collection::vec((0u8..5, 0u8..5, 0u8..4, 0u8..4), 2..6),
        e_eps in 1.05f64..3.0,
        delta in 0.05f64..0.9,
    ) {
        let log = random_log(5, pairs);
        prop_assume!(log.n_pairs() > 0);
        let params = PrivacyParams::from_e_epsilon(e_eps, delta);
        let sol = solve_dump(&log, params, &DumpOptions::default()).unwrap();
        let rep = theorem1_report(&log, &sol.counts, params);
        prop_assert!(rep.ok(), "{rep:?}");
    }

    #[test]
    fn exhaustive_definition2_holds_for_every_neighbor(
        pairs in prop::collection::vec((0u8..4, 0u8..4, 0u8..3, 0u8..3), 2..4),
        e_eps in 1.2f64..2.5,
        delta in 0.1f64..0.8,
    ) {
        let log = random_log(4, pairs);
        prop_assume!(log.n_pairs() > 0);
        let params = PrivacyParams::from_e_epsilon(e_eps, delta);
        let sol = solve_oump(&log, params, &OumpOptions::default()).unwrap();
        prop_assume!(output_space_size(&log, &sol.counts) <= 60_000.0);
        for user in log.users_with_logs() {
            let check = exhaustive_neighbor_check(&log, &sol.counts, user, 80_000);
            prop_assert!(
                check.satisfies(params.epsilon(), params.delta()),
                "user {user}: {check:?} vs (ε={}, δ={})", params.epsilon(), params.delta()
            );
        }
    }

    #[test]
    fn full_pipeline_never_releases_infeasible_counts(
        pairs in prop::collection::vec((0u8..6, 0u8..6, 0u8..4, 0u8..4), 2..7),
        e_eps in 1.05f64..3.0,
        delta in 0.05f64..0.9,
        seed in 0u64..1000,
    ) {
        let log = random_log(6, pairs);
        prop_assume!(log.n_pairs() > 0);
        let params = PrivacyParams::from_e_epsilon(e_eps, delta);
        let release = UmpSanitizer::new(UtilityObjective::OutputSize)
            .sanitize(&log, params, seed)
            .unwrap();
        let c = PrivacyConstraints::build(&release.reference, params).unwrap();
        prop_assert!(c.satisfied_by(&release.counts, 1e-9));
    }

    /// Mechanism-API contract: every `Sanitizer` impl debits its budget
    /// ledger exactly once per release (the base spend; only the
    /// optional UMP Laplace step may add a second entry), at the ε the
    /// release was asked for.
    #[test]
    fn every_mechanism_debits_the_ledger_exactly_once(
        pairs in prop::collection::vec((0u8..6, 0u8..6, 0u8..4, 0u8..4), 2..7),
        e_eps in 1.05f64..3.0,
        delta in 0.05f64..0.9,
        seed in 0u64..1000,
    ) {
        let log = random_log(6, pairs);
        prop_assume!(log.n_pairs() > 0);
        let params = PrivacyParams::from_e_epsilon(e_eps, delta);
        let mechanisms: [Box<dyn Sanitizer>; 3] = [
            Box::new(UmpSanitizer::new(UtilityObjective::OutputSize)),
            Box::new(ZealousSanitizer::new()),
            Box::new(LdpSanitizer::new()),
        ];
        for mech in &mechanisms {
            let release = mech.sanitize(&log, params, seed).unwrap();
            prop_assert_eq!(
                release.ledger.entries().len(), 1,
                "{}: one debit per release", mech.info().id
            );
            prop_assert!(
                (release.ledger.total_epsilon() - params.epsilon()).abs() < 1e-12,
                "{}: debits the requested ε", mech.info().id
            );
        }
    }

    /// ZEALOUS threshold contract on random logs: a pair is released
    /// iff its noisy count clears τ, every decided pair passed the
    /// coarse phase, and the released output contains exactly the
    /// released decisions.
    #[test]
    fn zealous_releases_only_above_noisy_threshold(
        pairs in prop::collection::vec((0u8..6, 0u8..6, 0u8..4, 0u8..4), 2..7),
        e_eps in 1.05f64..3.0,
        delta in 0.05f64..0.9,
        seed in 0u64..1000,
    ) {
        let log = random_log(6, pairs);
        prop_assume!(log.n_pairs() > 0);
        let params = PrivacyParams::from_e_epsilon(e_eps, delta);
        let opts = ZealousOptions::default();
        let plan = zealous_plan(&log, params, seed, &opts);
        let release = ZealousSanitizer::with_options(opts).sanitize(&log, params, seed).unwrap();
        for d in &plan.decisions {
            prop_assert_eq!(d.released, d.noisy_count >= plan.threshold);
            prop_assert!(d.capped_count >= plan.coarse_threshold, "coarse phase filters first");
            prop_assert_eq!(release.counts[d.pair.index()] > 0, d.released);
        }
        let decided: Vec<usize> = plan.decisions.iter().map(|d| d.pair.index()).collect();
        for idx in 0..release.counts.len() {
            if !decided.contains(&idx) {
                prop_assert_eq!(release.counts[idx], 0, "undecided pairs are never released");
            }
        }
    }

    /// The paper's reliability bound, in closed form: a count sitting
    /// `b·ln(1/(2β))` above the release threshold τ is released with
    /// probability at least 1 − β.
    #[test]
    fn zealous_reliability_bound_closed_form(
        cap in 1u64..20,
        epsilon in 0.05f64..3.0,
        tau_prime in 1u64..50,
        delta in 0.001f64..0.49,
        beta in 0.001f64..0.49,
    ) {
        let b = 2.0 * cap as f64 / epsilon;
        let tau = tau_prime as f64 + tail_margin(b, delta);
        let count = tau + tail_margin(b, beta);
        let p = release_probability(count, tau, b);
        prop_assert!(p >= 1.0 - beta - 1e-12, "p = {p} vs 1 - β = {}", 1.0 - beta);
    }
}
