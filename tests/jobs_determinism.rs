//! `--jobs N` must never change results: the parallel prefetch shards
//! are data-defined (fixed chunks of the sorted grid, one warm-start
//! chain per shard), so the worker count only affects wall-clock. This
//! is the contract that keeps the golden fixture and the paper tables
//! reproducible on any machine.

use dpsan_eval::{run_experiments, Ctx, Scale};

#[test]
fn repro_output_is_byte_identical_across_jobs() {
    // table4 exercises the O-UMP budget shards, fig3a the F-UMP δ-curve
    // chains — the two parallel paths of the pipeline; compare runs
    // every mechanism serially over a prefetched grid
    let names: Vec<String> = ["table4", "fig3a", "compare"].iter().map(|s| s.to_string()).collect();
    let render = |jobs: usize| {
        let ctx = Ctx::new(Scale::Tiny).with_jobs(jobs);
        let mut buf = Vec::new();
        run_experiments(&names, &ctx, &mut buf, false).expect("tiny experiments run");
        buf
    };
    let serial = render(1);
    let parallel = render(4);
    assert!(
        serial == parallel,
        "--jobs 1 and --jobs 4 diverged:\n{}\nvs\n{}",
        String::from_utf8_lossy(&serial),
        String::from_utf8_lossy(&parallel)
    );
}
