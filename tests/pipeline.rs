//! Cross-crate integration tests: generator → preprocessing →
//! constraints → UMP solvers → sampling → metrics, end to end.

use dpsan::core::metrics::{diff_ratio_histogram, diversity_retained, precision_recall};
use dpsan::core::sampling::output_pair_counts;
use dpsan::core::theory::theorem1_report;
use dpsan::core::ump::output_size::{solve_oump, OumpOptions};
use dpsan::prelude::*;

const SEED: u64 = 0xd95a_11ce;

fn tiny_input() -> SearchLog {
    generate(&presets::aol_tiny())
}

#[test]
fn oump_pipeline_is_private_and_schema_preserving() {
    let input = tiny_input();
    let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
    let release =
        UmpSanitizer::new(UtilityObjective::OutputSize).sanitize(&input, params, SEED).unwrap();

    // released counts satisfy Theorem 1 exactly
    let rep = theorem1_report(&release.reference, &release.counts, params);
    assert!(rep.ok(), "{rep:?}");

    // sampled output matches the counts and the input schema
    assert_eq!(output_pair_counts(&release.reference, &release.output), release.counts);
    for r in release.output.records() {
        let p = release.reference.pair_id(r.query, r.url).expect("pair from input");
        assert!(release.reference.holders(p).any(|t| t.user == r.user));
    }
}

#[test]
fn fump_pipeline_tracks_frequent_pairs() {
    let input = tiny_input();
    let params = PrivacyParams::from_e_epsilon(2.3, 0.8);
    let (pre, _) = preprocess(&input);
    let lambda = solve_oump(&pre, params, &OumpOptions::default()).unwrap().lambda;
    assert!(lambda > 0);

    // mark the top ~5% of pairs frequent
    let mut counts: Vec<u64> = pre.pairs().map(|p| p.total).collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let min_support = counts[(counts.len() / 20).max(1) - 1] as f64 / pre.size() as f64;

    let release = UmpSanitizer::new(UtilityObjective::FrequentPairs {
        min_support,
        output_size: (lambda * 4 / 5).max(1),
    })
    .sanitize(&input, params, SEED)
    .unwrap();

    let pr = precision_recall(&release.reference, &release.counts, min_support);
    assert!(pr.input_frequent > 0);
    // with a generous budget some head pairs survive flooring
    assert!(
        release.counts.iter().sum::<u64>() > 0,
        "the F-UMP output is non-empty at a loose budget"
    );
}

#[test]
fn dump_pipeline_retains_diversity_monotonically() {
    let input = tiny_input();
    let retained = |e_eps: f64| {
        let params = PrivacyParams::from_e_epsilon(e_eps, 0.5);
        let release = UmpSanitizer::new(UtilityObjective::Diversity { solver: DumpSolver::Spe })
            .sanitize(&input, params, SEED)
            .unwrap();
        diversity_retained(&release.counts)
    };
    let lo = retained(1.1);
    let hi = retained(2.3);
    assert!(hi >= lo, "diversity grows with ε: {lo} -> {hi}");
}

#[test]
fn sampled_outputs_vary_by_seed_but_share_totals() {
    let input = tiny_input();
    let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
    let mech = UmpSanitizer::new(UtilityObjective::OutputSize);
    let a = mech.sanitize(&input, params, 1).unwrap();
    let b = mech.sanitize(&input, params, 2).unwrap();
    // same optimal counts, different multinomial draws
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.output.size(), b.output.size());
    let ra: Vec<_> = a.output.records().collect();
    let rb: Vec<_> = b.output.records().collect();
    assert_ne!(ra, rb, "different seeds give different user attributions");
}

#[test]
fn diff_ratio_histogram_improves_with_output_size() {
    let input = tiny_input();
    let (pre, _) = preprocess(&input);
    let params = PrivacyParams::from_e_epsilon(2.3, 0.8);
    let lambda = solve_oump(&pre, params, &OumpOptions::default()).unwrap().lambda;
    if lambda < 4 {
        return; // not enough room at this scale
    }
    let release =
        UmpSanitizer::new(UtilityObjective::OutputSize).sanitize(&input, params, SEED).unwrap();
    let h = diff_ratio_histogram(&release.reference, &release.output, 0.1, 10);
    assert_eq!(h.total as usize, pre.n_triplets());
}

#[test]
fn laplace_step_composes_in_ledger() {
    let input = tiny_input();
    let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
    let release = UmpSanitizer::new(UtilityObjective::OutputSize)
        .with_laplace(LaplaceStep { sensitivity: 1.0, epsilon_prime: 0.3 })
        .sanitize(&input, params, SEED)
        .unwrap();
    assert_eq!(release.ledger.entries().len(), 2);
    assert!(release.ledger.within(params.epsilon() + 0.3, params.delta()));
    // the repaired counts are still private
    let rep = theorem1_report(&release.reference, &release.counts, params);
    assert!(rep.ok());
}

#[test]
fn tsv_roundtrip_of_sanitized_output() {
    let input = tiny_input();
    let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
    let release =
        UmpSanitizer::new(UtilityObjective::OutputSize).sanitize(&input, params, SEED).unwrap();
    let mut buf = Vec::new();
    dpsan::searchlog::io::write_tsv(&release.output, &mut buf).unwrap();
    let reread = dpsan::searchlog::io::read_tsv(std::io::Cursor::new(buf)).unwrap();
    assert_eq!(reread.size(), release.output.size());
    assert_eq!(reread.n_pairs(), release.output.n_pairs());
    assert_eq!(reread.n_user_logs(), release.output.n_user_logs());
}

#[test]
fn rival_mechanisms_share_the_released_counts_frame() {
    let input = tiny_input();
    let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
    let mechanisms: [Box<dyn Sanitizer>; 3] = [
        Box::new(UmpSanitizer::new(UtilityObjective::OutputSize)),
        Box::new(ZealousSanitizer::new()),
        Box::new(LdpSanitizer::new()),
    ];
    for mech in &mechanisms {
        let release = mech.sanitize(&input, params, SEED).unwrap();
        assert_eq!(
            release.counts.len(),
            release.reference.n_pairs(),
            "{}: counts cover the reference pair space",
            mech.info().id
        );
        let score = mechanism_score(&release.reference, &release.counts, 0.02);
        assert!(score.precision >= 0.0 && score.precision <= 1.0, "{}", mech.info().id);
        assert!(score.recall >= 0.0 && score.recall <= 1.0, "{}", mech.info().id);
        assert!(score.query_kl >= 0.0, "{}", mech.info().id);
    }
}
