//! Cross-crate integration tests: generator → preprocessing →
//! constraints → UMP solvers → sampling → metrics, end to end.

use dpsan::core::metrics::{diff_ratio_histogram, diversity_retained, precision_recall};
use dpsan::core::sampling::output_pair_counts;
use dpsan::core::theory::theorem1_report;
use dpsan::core::ump::output_size::{solve_oump, OumpOptions};
use dpsan::prelude::*;

fn tiny_input() -> SearchLog {
    generate(&presets::aol_tiny())
}

#[test]
fn oump_pipeline_is_private_and_schema_preserving() {
    let input = tiny_input();
    let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
    let result =
        Sanitizer::with_objective(params, UtilityObjective::OutputSize).sanitize(&input).unwrap();

    // released counts satisfy Theorem 1 exactly
    let rep = theorem1_report(&result.preprocessed, &result.counts, params);
    assert!(rep.ok(), "{rep:?}");

    // sampled output matches the counts and the input schema
    assert_eq!(output_pair_counts(&result.preprocessed, &result.output), result.counts);
    for r in result.output.records() {
        let p = result.preprocessed.pair_id(r.query, r.url).expect("pair from input");
        assert!(result.preprocessed.holders(p).any(|t| t.user == r.user));
    }
}

#[test]
fn fump_pipeline_tracks_frequent_pairs() {
    let input = tiny_input();
    let params = PrivacyParams::from_e_epsilon(2.3, 0.8);
    let (pre, _) = preprocess(&input);
    let lambda = solve_oump(&pre, params, &OumpOptions::default()).unwrap().lambda;
    assert!(lambda > 0);

    // mark the top ~5% of pairs frequent
    let mut counts: Vec<u64> = pre.pairs().map(|p| p.total).collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let min_support = counts[(counts.len() / 20).max(1) - 1] as f64 / pre.size() as f64;

    let result = Sanitizer::with_objective(
        params,
        UtilityObjective::FrequentPairs { min_support, output_size: (lambda * 4 / 5).max(1) },
    )
    .sanitize(&input)
    .unwrap();

    let pr = precision_recall(&result.preprocessed, &result.counts, min_support);
    assert!(pr.input_frequent > 0);
    // with a generous budget some head pairs survive flooring
    assert!(
        result.counts.iter().sum::<u64>() > 0,
        "the F-UMP output is non-empty at a loose budget"
    );
}

#[test]
fn dump_pipeline_retains_diversity_monotonically() {
    let input = tiny_input();
    let retained = |e_eps: f64| {
        let params = PrivacyParams::from_e_epsilon(e_eps, 0.5);
        let result = Sanitizer::with_objective(
            params,
            UtilityObjective::Diversity { solver: DumpSolver::Spe },
        )
        .sanitize(&input)
        .unwrap();
        diversity_retained(&result.counts)
    };
    let lo = retained(1.1);
    let hi = retained(2.3);
    assert!(hi >= lo, "diversity grows with ε: {lo} -> {hi}");
}

#[test]
fn sampled_outputs_vary_by_seed_but_share_totals() {
    let input = tiny_input();
    let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
    let mut cfg = SanitizerConfig::new(params, UtilityObjective::OutputSize);
    cfg.seed = 1;
    let a = Sanitizer::new(cfg.clone()).sanitize(&input).unwrap();
    cfg.seed = 2;
    let b = Sanitizer::new(cfg).sanitize(&input).unwrap();
    // same optimal counts, different multinomial draws
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.output.size(), b.output.size());
    let ra: Vec<_> = a.output.records().collect();
    let rb: Vec<_> = b.output.records().collect();
    assert_ne!(ra, rb, "different seeds give different user attributions");
}

#[test]
fn diff_ratio_histogram_improves_with_output_size() {
    let input = tiny_input();
    let (pre, _) = preprocess(&input);
    let params = PrivacyParams::from_e_epsilon(2.3, 0.8);
    let lambda = solve_oump(&pre, params, &OumpOptions::default()).unwrap().lambda;
    if lambda < 4 {
        return; // not enough room at this scale
    }
    let run = |frac: u64| {
        let result = Sanitizer::with_objective(params, UtilityObjective::OutputSize)
            .sanitize(&input)
            .unwrap();
        let _ = frac;
        diff_ratio_histogram(&result.preprocessed, &result.output, 0.1, 10)
    };
    let h = run(2);
    assert_eq!(h.total as usize, pre.n_triplets());
}

#[test]
fn laplace_step_composes_in_ledger() {
    let input = tiny_input();
    let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
    let mut cfg = SanitizerConfig::new(params, UtilityObjective::OutputSize);
    cfg.laplace = Some(LaplaceStep { sensitivity: 1.0, epsilon_prime: 0.3 });
    let result = Sanitizer::new(cfg).sanitize(&input).unwrap();
    assert_eq!(result.ledger.entries().len(), 2);
    assert!(result.ledger.within(params.epsilon() + 0.3, params.delta()));
    // the repaired counts are still private
    let rep = theorem1_report(&result.preprocessed, &result.counts, params);
    assert!(rep.ok());
}

#[test]
fn tsv_roundtrip_of_sanitized_output() {
    let input = tiny_input();
    let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
    let result =
        Sanitizer::with_objective(params, UtilityObjective::OutputSize).sanitize(&input).unwrap();
    let mut buf = Vec::new();
    dpsan::searchlog::io::write_tsv(&result.output, &mut buf).unwrap();
    let reread = dpsan::searchlog::io::read_tsv(std::io::Cursor::new(buf)).unwrap();
    assert_eq!(reread.size(), result.output.size());
    assert_eq!(reread.n_pairs(), result.output.n_pairs());
    assert_eq!(reread.n_user_logs(), result.output.n_user_logs());
}
