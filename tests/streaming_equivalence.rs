//! End-to-end contract of the streaming ingestion engine: a sanitize
//! run fed through `dpsan-stream` (any shard count, any `jobs`)
//! produces **byte-identical** released output to the all-in-memory
//! path, and the ingestion-side memory stays bounded by the configured
//! chunk size + sketch capacity (asserted via the engine's counters,
//! not RSS).

use std::io::Cursor;

use dpsan::prelude::*;
use dpsan::searchlog::io::{read_tsv, write_tsv};

fn generated_tsv() -> Vec<u8> {
    let cfg = AolLikeConfig { n_users: 70, mean_events_per_user: 25.0, ..presets::aol_tiny() };
    let mut buf = Vec::new();
    dpsan::datagen::write_log_tsv(&cfg, &mut buf).expect("spool the generated log");
    buf
}

const SEED: u64 = 0xd95a_11ce;

/// Sanitize a log through any mechanism and render the released TSV
/// bytes.
fn release_with(log: &SearchLog, mechanism: &dyn Sanitizer) -> Vec<u8> {
    let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
    let out = mechanism.sanitize(log, params, SEED).expect("sanitization succeeds");
    let mut bytes = Vec::new();
    write_tsv(&out.output, &mut bytes).expect("render TSV");
    bytes
}

/// UMP releases by objective (the original streaming contract).
fn release(log: &SearchLog, objective: UtilityObjective) -> Vec<u8> {
    release_with(log, &UmpSanitizer::new(objective))
}

#[test]
fn streaming_and_in_memory_releases_are_byte_identical() {
    let file = generated_tsv();
    let reference_log = read_tsv(Cursor::new(&file[..])).unwrap();
    let reference = release(&reference_log, UtilityObjective::OutputSize);
    assert!(!reference.is_empty(), "a generous budget releases something");

    for shards in [1usize, 4, 9] {
        for jobs in [1usize, 3] {
            let cfg = StreamConfig { shards, jobs, chunk_rows: 128, sketch_capacity: 512 };
            let got = ingest_tsv(Cursor::new(&file[..]), &cfg).unwrap();
            let released = release(&got.log, UtilityObjective::OutputSize);
            assert_eq!(
                released, reference,
                "shards={shards} jobs={jobs}: released bytes must match the in-memory path"
            );
        }
    }
}

#[test]
fn fump_release_via_sketch_matches_exact_mining() {
    let file = generated_tsv();
    let min_support = 0.01;

    // in-memory path: exact frequent-pair scan inside the sanitizer
    let reference_log = read_tsv(Cursor::new(&file[..])).unwrap();
    let (pre, _) = preprocess(&reference_log);
    let output_size = (pre.size() / 20).max(1);
    let reference =
        release(&reference_log, UtilityObjective::FrequentPairs { min_support, output_size });

    // streaming path: sketch-mined candidates, exactified
    for jobs in [1usize, 4] {
        let cfg = StreamConfig { shards: 6, jobs, chunk_rows: 256, sketch_capacity: 256 };
        let got = ingest_tsv(Cursor::new(&file[..]), &cfg).unwrap();
        let (pre_s, _) = preprocess(&got.log);
        let frequent = sketch_frequent_pairs(&pre_s, &got.sketch.unwrap(), min_support);
        let released = release(
            &got.log,
            UtilityObjective::SketchedFrequentPairs { frequent, min_support, output_size },
        );
        assert_eq!(released, reference, "jobs={jobs}");
    }
}

/// The trait contract extends to the non-LP mechanisms: ZEALOUS and
/// per-user randomized response release byte-identical output whether
/// the log arrived in memory or through any sharded streaming layout.
/// (ZEALOUS draws one Laplace sample per candidate in pair-id order and
/// ldp-rr seeds per-user RNGs from the user *name*, so neither depends
/// on shard composition.)
#[test]
fn zealous_and_ldp_releases_are_shard_and_jobs_invariant() {
    let file = generated_tsv();
    let reference_log = read_tsv(Cursor::new(&file[..])).unwrap();
    let mechanisms: [Box<dyn Sanitizer>; 2] =
        [Box::new(ZealousSanitizer::new()), Box::new(LdpSanitizer::new())];

    for mech in &mechanisms {
        let reference = release_with(&reference_log, mech.as_ref());
        assert!(!reference.is_empty(), "{}: releases something", mech.info().id);
        for shards in [1usize, 4, 9] {
            for jobs in [1usize, 3] {
                let cfg = StreamConfig { shards, jobs, chunk_rows: 128, sketch_capacity: 512 };
                let got = ingest_tsv(Cursor::new(&file[..]), &cfg).unwrap();
                let released = release_with(&got.log, mech.as_ref());
                assert_eq!(
                    released,
                    reference,
                    "{} shards={shards} jobs={jobs}: released bytes must match the in-memory path",
                    mech.info().id
                );
            }
        }
    }
}

/// The zealous sketch-candidate path (what `sanitize --mechanism
/// zealous` runs on streamed input) is byte-identical to the exact
/// coarse scan: the candidate mask is re-filtered against exact totals,
/// so the noise stream cannot drift.
#[test]
fn zealous_release_via_sketch_candidates_matches_exact_scan() {
    let file = generated_tsv();
    let reference_log = read_tsv(Cursor::new(&file[..])).unwrap();
    let exact = release_with(&reference_log, &ZealousSanitizer::new());

    let tau_prime = ZealousOptions::default().coarse_threshold;
    for jobs in [1usize, 4] {
        let cfg = StreamConfig { shards: 6, jobs, chunk_rows: 256, sketch_capacity: 256 };
        let got = ingest_tsv(Cursor::new(&file[..]), &cfg).unwrap();
        let (pre_s, _) = preprocess(&got.log);
        let support = tau_prime as f64 / pre_s.size() as f64;
        let candidates = sketch_frequent_pairs(&pre_s, &got.sketch.unwrap(), support);
        let mech = ZealousSanitizer::with_options(ZealousOptions {
            candidates: Some(candidates),
            ..Default::default()
        });
        let released = release_with(&got.log, &mech);
        assert_eq!(released, exact, "jobs={jobs}");
    }
}

#[test]
fn ingestion_memory_is_bounded_by_chunk_and_sketch_capacity() {
    let file = generated_tsv();
    let chunk_rows = 64;
    let sketch_capacity = 32;
    let cfg = StreamConfig { shards: 8, jobs: 2, chunk_rows, sketch_capacity };
    let got = ingest_tsv(Cursor::new(&file[..]), &cfg).unwrap();

    // raw rows never pile up beyond one chunk
    assert!(got.report.rows > chunk_rows as u64, "the log is larger than one chunk");
    assert!(
        got.report.peak_chunk_rows <= chunk_rows,
        "peak resident raw rows {} exceed the chunk bound {chunk_rows}",
        got.report.peak_chunk_rows
    );
    // the sketch respects its counter budget despite seeing every row
    assert!(got.report.sketch_entries <= sketch_capacity);
    let sketch = got.sketch.unwrap();
    assert_eq!(sketch.total_weight(), got.log.size());
    // per-shard aggregation holds only the shard's triplets, which
    // together partition the log's triplets (user-complete shards)
    assert!(got.report.max_shard_triplets <= got.log.n_triplets());
    assert_eq!(got.stats.shard.triplets, got.log.n_triplets());
}
