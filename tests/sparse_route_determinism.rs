//! The sparse solver route must be exactly as deterministic as the
//! dense one: same input, same seed → byte-identical release, run to
//! run. The routes may land on *different* optimal vertices (both are
//! optimal — the cross-check suites compare objectives at 1e-9, not
//! bytes), but each route on its own can never drift: that is the
//! contract the golden fixture and the CI scale-smoke gate rely on
//! once a log is big enough to route sparse.

use dpsan_core::constraints::PrivacyConstraints;
use dpsan_core::mechanism::{Sanitizer, UmpSanitizer, UtilityObjective};
use dpsan_core::ump::output_size::{solve_oump_with, OumpOptions};
use dpsan_datagen::{generate, presets};
use dpsan_dp::params::PrivacyParams;
use dpsan_lp::simplex::SimplexOptions;
use dpsan_searchlog::io::write_tsv;
use dpsan_searchlog::{preprocess, SearchLog};

fn release_bytes(pre: &SearchLog, sparse: Option<bool>) -> (Vec<u8>, u64) {
    let lp = SimplexOptions { sparse, ..SimplexOptions::default() };
    let mech = UmpSanitizer::new(UtilityObjective::OutputSize).with_lp_options(lp);
    let rel =
        mech.sanitize(pre, PrivacyParams::from_e_epsilon(2.0, 0.5), 0xd95a_11ce).expect("sanitize");
    let mut buf = Vec::new();
    write_tsv(&rel.output, &mut buf).expect("serialize release");
    (buf, rel.output.size())
}

#[test]
fn sparse_route_release_is_byte_identical_across_runs() {
    let (pre, _) = preprocess(&generate(&presets::aol_tiny()));
    let (a, _) = release_bytes(&pre, Some(true));
    let (b, _) = release_bytes(&pre, Some(true));
    assert!(
        a == b,
        "two sparse-route runs over the same input diverged:\n{}\nvs\n{}",
        String::from_utf8_lossy(&a),
        String::from_utf8_lossy(&b)
    );
    assert!(!a.is_empty(), "the tiny release must not be empty");
}

#[test]
fn sparse_route_matches_dense_objective() {
    // both routes must land on an *optimal* vertex of the same LP: the
    // vertices (and hence the floored counts) may differ, but the
    // objective agrees to the dense-oracle tolerance
    let (pre, _) = preprocess(&generate(&presets::aol_tiny()));
    let cons = PrivacyConstraints::build(&pre, PrivacyParams::from_e_epsilon(2.0, 0.5)).unwrap();
    let run = |sparse| {
        let opts = OumpOptions {
            lp: SimplexOptions { sparse: Some(sparse), ..SimplexOptions::default() },
            ..Default::default()
        };
        solve_oump_with(&cons, &opts).expect("optimal").lp_value
    };
    let (s, d) = (run(true), run(false));
    assert!(
        (s - d).abs() <= 1e-9 * (1.0 + d.abs()),
        "sparse objective {s} diverged from dense oracle {d}"
    );
}
