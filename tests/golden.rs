//! Golden-output gate: `repro all --scale tiny` must reproduce the
//! checked-in fixture exactly (modulo wall-clock durations, which the
//! normalizer masks — see `dpsan_eval::golden`). Mechanism or solver
//! refactors that change any released count, λ value, or metric will
//! show up as a diff here instead of slipping through silently.
//!
//! To intentionally refresh the fixture after a reviewed change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --release --test golden
//! ```

use dpsan_eval::golden::normalize;
use dpsan_eval::{run_experiments, Ctx, Scale, EXPERIMENTS};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/repro_tiny.txt");

#[test]
fn repro_tiny_matches_golden_fixture() {
    // jobs=2 exercises the sharded prefetch path; output is
    // jobs-independent by design (see dpsan_eval::pool)
    let ctx = Ctx::new(Scale::Tiny).with_jobs(2);
    let names: Vec<String> = EXPERIMENTS.iter().map(|(id, _)| id.to_string()).collect();
    let mut buf = Vec::new();
    run_experiments(&names, &ctx, &mut buf, false).expect("tiny repro runs");
    let got = normalize(&String::from_utf8(buf).expect("experiment output is UTF-8"));

    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(FIXTURE, &got).expect("fixture written");
        eprintln!("golden fixture updated: {FIXTURE}");
        return;
    }

    let want = std::fs::read_to_string(FIXTURE)
        .expect("fixture exists (run with GOLDEN_UPDATE=1 to create it)");
    if got != want {
        // line-level report keeps the failure actionable without a
        // multi-kilobyte assert message
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            assert_eq!(g, w, "first divergence at fixture line {}", i + 1);
        }
        assert_eq!(
            got.lines().count(),
            want.lines().count(),
            "outputs agree line-by-line but differ in length"
        );
        unreachable!("got != want but no line difference found");
    }
}
