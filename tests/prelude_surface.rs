//! Workspace-wiring smoke test: the `dpsan::prelude` re-exports named
//! in the README resolve, and a minimal sanitize round-trip succeeds
//! through the facade alone.

use dpsan::prelude::*;

/// Every documented prelude name resolves as the type it claims to be.
#[test]
fn prelude_reexports_resolve() {
    // constructible types
    let _builder: SearchLogBuilder = SearchLogBuilder::new();
    let params: PrivacyParams = PrivacyParams::from_e_epsilon(2.0, 0.5);
    let ump: UmpSanitizer = UmpSanitizer::new(UtilityObjective::OutputSize);
    let zealous: ZealousSanitizer = ZealousSanitizer::new();
    let ldp: LdpSanitizer = LdpSanitizer::new();
    let _solver: DumpSolver = DumpSolver::Spe;
    let _zopts: ZealousOptions = ZealousOptions::default();
    let _lopts: LdpOptions = LdpOptions::default();
    let _ = params;

    // every mechanism is a trait object with static metadata
    let mechanisms: [&dyn Sanitizer; 3] = [&ump, &zealous, &ldp];
    for m in mechanisms {
        let info: MechanismInfo = m.info();
        let _: PrivacyModel = info.privacy;
        assert!(!info.id.is_empty());
    }

    // objective variants all name-resolve
    let _objs =
        [UtilityObjective::OutputSize, UtilityObjective::Diversity { solver: DumpSolver::Spe }];

    // functions and modules
    let _ = preprocess;
    let _: fn(&SearchLog, f64) -> Vec<_> = frequent_pairs;
    let _ = metrics::precision_recall;
    let _: fn(&SearchLog, &[u64], f64) -> MechanismScore = mechanism_score;
    let _ = generate;
    let _ = presets::aol_tiny;
    let _cfg: AolLikeConfig = presets::aol_tiny();
}

/// A small end-to-end sanitize through the facade: unique pairs are
/// removed, the output keeps the input schema, and the released counts
/// satisfy the privacy constraint polytope.
#[test]
fn minimal_sanitize_roundtrip() {
    let mut b = SearchLogBuilder::new();
    for k in 0..6 {
        b.add(&format!("u{k}"), "rust lang", "rust-lang.org", 3).unwrap();
        b.add(&format!("u{k}"), "weather", "weather.com", 2).unwrap();
    }
    b.add("u0", "my private query", "example.org", 5).unwrap();
    let input = b.build();

    let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
    let mechanism = UmpSanitizer::new(UtilityObjective::OutputSize);
    let release: Release = mechanism.sanitize(&input, params, 7).unwrap();

    // the single-holder pair is preprocessed away
    assert_eq!(release.report.removed_pairs, 1);
    // identical output schema: every record is a positive-count tuple
    for record in release.output.records() {
        assert!(record.count > 0);
    }
    // released counts lie in the privacy polytope of the preprocessed log
    let constraints = PrivacyConstraints::build(&release.reference, params).unwrap();
    assert!(constraints.satisfied_by(&release.counts, 1e-9));
    // stats view of the output agrees with the log itself
    let stats = LogStats::of(&release.output);
    assert_eq!(stats.total_tuples, release.output.size());
    // exactly one budget debit for the release
    assert_eq!(release.ledger.entries().len(), 1);
}
