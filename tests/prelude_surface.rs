//! Workspace-wiring smoke test: the `dpsan::prelude` re-exports named
//! in the README resolve, and a minimal sanitize round-trip succeeds
//! through the facade alone.

use dpsan::prelude::*;

/// Every documented prelude name resolves as the type it claims to be.
#[test]
fn prelude_reexports_resolve() {
    // constructible types
    let _builder: SearchLogBuilder = SearchLogBuilder::new();
    let params: PrivacyParams = PrivacyParams::from_e_epsilon(2.0, 0.5);
    let _sanitizer: Sanitizer = Sanitizer::with_objective(params, UtilityObjective::OutputSize);
    let _cfg: SanitizerConfig = SanitizerConfig::new(params, UtilityObjective::OutputSize);
    let _solver: DumpSolver = DumpSolver::Spe;

    // objective variants all name-resolve
    let _objs =
        [UtilityObjective::OutputSize, UtilityObjective::Diversity { solver: DumpSolver::Spe }];

    // functions and modules
    let _ = preprocess;
    let _: fn(&SearchLog, f64) -> Vec<_> = frequent_pairs;
    let _ = metrics::precision_recall;
    let _ = generate;
    let _ = presets::aol_tiny;
    let _cfg: AolLikeConfig = presets::aol_tiny();
}

/// A small end-to-end sanitize through the facade: unique pairs are
/// removed, the output keeps the input schema, and the released counts
/// satisfy the privacy constraint polytope.
#[test]
fn minimal_sanitize_roundtrip() {
    let mut b = SearchLogBuilder::new();
    for k in 0..6 {
        b.add(&format!("u{k}"), "rust lang", "rust-lang.org", 3).unwrap();
        b.add(&format!("u{k}"), "weather", "weather.com", 2).unwrap();
    }
    b.add("u0", "my private query", "example.org", 5).unwrap();
    let input = b.build();

    let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
    let sanitizer = Sanitizer::with_objective(params, UtilityObjective::OutputSize);
    let result = sanitizer.sanitize(&input).unwrap();

    // the single-holder pair is preprocessed away
    assert_eq!(result.report.removed_pairs, 1);
    // identical output schema: every record is a positive-count tuple
    for record in result.output.records() {
        assert!(record.count > 0);
    }
    // released counts lie in the privacy polytope of the preprocessed log
    let constraints = PrivacyConstraints::build(&result.preprocessed, params).unwrap();
    assert!(constraints.satisfied_by(&result.counts, 1e-9));
    // stats view of the output agrees with the log itself
    let stats = LogStats::of(&result.output);
    assert_eq!(stats.total_tuples, result.output.size());
}
